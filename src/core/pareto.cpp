#include "core/pareto.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/quasi.hpp"
#include "sched/scheduler.hpp"

namespace pamo::core {

bool dominates(const eva::OutcomeVector& a, const eva::OutcomeVector& b) {
  bool all_le = true;
  bool any_lt = false;
  for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
    if (a[k] > b[k]) all_le = false;
    if (a[k] < b[k]) any_lt = true;
  }
  return all_le && any_lt;
}

std::vector<std::size_t> pareto_front(
    const std::vector<eva::OutcomeVector>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

double hypervolume_estimate(const std::vector<eva::OutcomeVector>& points,
                            std::size_t num_samples, std::uint64_t seed) {
  PAMO_CHECK(num_samples > 0, "hypervolume needs at least one sample");
  if (points.empty()) return 0.0;
  HaltonSequence halton(eva::kNumObjectives, seed);
  std::size_t dominated_count = 0;
  for (std::size_t s = 0; s < num_samples; ++s) {
    const std::vector<double> u = halton.next();
    // u is "dominated" by a point p when p <= u component-wise (p is at
    // least as good everywhere) — then u's box volume is covered.
    for (const auto& p : points) {
      bool covered = true;
      for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
        if (p[k] > u[k]) {
          covered = false;
          break;
        }
      }
      if (covered) {
        ++dominated_count;
        break;
      }
    }
  }
  return static_cast<double>(dominated_count) /
         static_cast<double>(num_samples);
}

std::vector<ParetoSample> sample_outcome_space(const eva::Workload& workload,
                                               std::size_t num_samples,
                                               std::uint64_t seed) {
  const eva::OutcomeNormalizer normalizer =
      eva::OutcomeNormalizer::for_workload(workload);
  Rng rng(seed);
  std::vector<ParetoSample> samples;
  samples.reserve(num_samples);
  for (std::size_t trial = 0;
       trial < num_samples * 6 && samples.size() < num_samples; ++trial) {
    eva::JointConfig config;
    for (std::size_t i = 0; i < workload.num_streams(); ++i) {
      config.push_back(workload.space.sample(rng));
    }
    const auto schedule = sched::schedule_zero_jitter(workload, config);
    if (!schedule.feasible) continue;
    const eva::OutcomeVector raw =
        eva::true_outcomes(workload, config, schedule.uplink_per_parent);
    samples.push_back({std::move(config), normalizer.normalize(raw)});
  }
  PAMO_ENSURES(samples.size() <= num_samples,
               "sampler must not overshoot the requested sample count");
  return samples;
}

}  // namespace pamo::core
