#include "core/obs_export.hpp"

#include "common/contracts.hpp"

namespace pamo::core {

namespace {

const char* repair_kind_name(RepairKind kind) {
  switch (kind) {
    case RepairKind::kFallbackSchedule: return "fallback_schedule";
    case RepairKind::kReplaceOrphans: return "replace_orphans";
    case RepairKind::kFullRepack: return "full_repack";
    case RepairKind::kRephase: return "rephase";
    case RepairKind::kKnobStepDown: return "knob_step_down";
    case RepairKind::kExactReplaceOrphans: return "exact_replace_orphans";
  }
  return "?";
}

obs::EpochRecord::SimSummary summarize(const sim::SimReport& sim) {
  obs::EpochRecord::SimSummary s;
  s.total_frames = sim.total_frames;
  s.total_emitted = sim.total_emitted;
  s.total_dropped = sim.total_dropped;
  s.dropped_by_loss = sim.dropped_by_loss;
  s.slo_violations = sim.slo_violations;
  s.unserved_streams = sim.unserved_streams;
  s.mean_latency = sim.mean_latency;
  s.max_jitter = sim.max_jitter;
  s.total_queue_delay = sim.total_queue_delay;
  return s;
}

}  // namespace

obs::EpochRecord export_epoch_record(
    const SchedulingService::EpochReport& report, bool include_obs_state) {
  obs::EpochRecord record;
  record.epoch = report.epoch;
  record.feasible = report.feasible;
  record.fallback = report.fallback;
  record.repaired = report.repaired;

  const EpochHealth& h = report.health;
  record.health.samples_rejected = h.learning.samples_rejected;
  record.health.samples_repaired = h.learning.samples_repaired;
  record.health.outliers_downweighted = h.learning.outliers_downweighted;
  record.health.cholesky_recoveries = h.learning.cholesky_recoveries;
  record.health.iteration_failures = h.learning.iteration_failures;
  record.health.watchdog_fires = h.learning.watchdog_fires;
  record.health.inconsistent_pairs = h.learning.inconsistent_pairs;
  record.health.max_jitter_applied = h.learning.max_jitter_applied;
  record.health.heuristic_fallback = h.learning.heuristic_fallback;
  record.health.optimizer_error = h.optimizer_error;
  record.health.repair_error = h.repair_error;
  record.health.fallback_taken = h.fallback_taken;
  record.health.error_message = h.error_message;
  record.health.warm_started = h.learning.warm_started;
  record.health.drift_fires = h.learning.drift_fires;
  record.health.drift_downweighted = h.learning.drift_downweighted;

  record.churn.offered = report.churn.offered;
  record.churn.arrived = report.churn.arrived;
  record.churn.departed = report.churn.departed;
  record.churn.admitted = report.churn.admitted;
  record.churn.deferred = report.churn.deferred;
  record.churn.shed = report.churn.shed;
  record.churn.load_factor = report.churn.load_factor;
  record.churn.offered_load = report.churn.offered_load;
  record.churn.admitted_load = report.churn.admitted_load;
  for (const GovernorAction& action : report.governor_actions) {
    record.governor_actions.push_back(
        {static_cast<std::uint64_t>(action.epoch), action.stream,
         governor_decision_name(action.decision), action.detail});
  }

  record.sim = summarize(report.sim);
  record.post_repair_sim = summarize(report.post_repair_sim);
  for (const RepairAction& action : report.repairs) {
    record.repairs.push_back({repair_kind_name(action.kind), action.detail});
  }
  record.benefit_trace = report.benefit_trace;

  if (include_obs_state) {
    record.metrics = obs::MetricsRegistry::global().snapshot();
    record.spans = obs::span_snapshot();
  }
  PAMO_ENSURES(record.governor_actions.size() ==
                       report.governor_actions.size() &&
                   record.repairs.size() == report.repairs.size(),
               "exported record must carry every action in the report");
  return record;
}

}  // namespace pamo::core
