// Pareto-dominance tools over normalized outcome vectors (§2.3).
//
// Outcomes here use the normalized convention (0 = best per objective), so
// dominance means component-wise <= with at least one strict <. The
// hypervolume indicator (w.r.t. the worst-case reference point 1⃗) is
// estimated by quasi-Monte-Carlo dominance counting — exact algorithms in
// five dimensions buy nothing at the sizes we care about.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eva/outcomes.hpp"
#include "eva/workload.hpp"

namespace pamo::core {

/// True iff `a` dominates `b` (a is no worse everywhere, better somewhere).
bool dominates(const eva::OutcomeVector& a, const eva::OutcomeVector& b);

/// Indices of the non-dominated points, in input order.
std::vector<std::size_t> pareto_front(
    const std::vector<eva::OutcomeVector>& points);

/// QMC estimate of the hypervolume dominated by `points` inside [0,1]^k
/// with reference point 1⃗ (larger = better front coverage).
double hypervolume_estimate(const std::vector<eva::OutcomeVector>& points,
                            std::size_t num_samples, std::uint64_t seed);

/// One sampled point of the reachable outcome space.
struct ParetoSample {
  eva::JointConfig config;
  eva::OutcomeVector normalized{};
};

/// Sample feasible configurations (Algorithm 1-schedulable), returning
/// their normalized ground-truth outcomes. Used to map the Pareto frontier
/// of a workload.
std::vector<ParetoSample> sample_outcome_space(const eva::Workload& workload,
                                               std::size_t num_samples,
                                               std::uint64_t seed);

}  // namespace pamo::core
