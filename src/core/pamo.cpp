#include "core/pamo.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace pamo::core {

namespace {

std::vector<double> to_vector(const eva::OutcomeVector& y) {
  return std::vector<double>(y.begin(), y.end());
}

}  // namespace

PamoOptions PamoScheduler::harden(PamoOptions options) {
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.gp.reject_nonfinite = true;
    options.gp.robust_noise = true;
    options.pref_learner.model.downweight_inconsistent = true;
  }
  return options;
}

PamoScheduler::PamoScheduler(const eva::Workload& workload,
                             PamoOptions options)
    : workload_(workload),
      options_(harden(std::move(options))),
      normalizer_(eva::OutcomeNormalizer::for_workload(workload)),
      models_(workload.space, options_.gp) {
  PAMO_CHECK(workload_.num_streams() > 0, "empty workload");
  PAMO_CHECK(options_.batch_size >= 1, "batch size must be >= 1");
}

eva::StreamMeasurement PamoScheduler::model_mean_measurement(
    const eva::StreamConfig& config) const {
  eva::StreamMeasurement m{};
  m.accuracy = models_.mean(Metric::kAccuracy, config);
  m.bandwidth_mbps = models_.mean(Metric::kBandwidth, config);
  m.compute_tflops = models_.mean(Metric::kCompute, config);
  m.power_watts = models_.mean(Metric::kPower, config);
  m.proc_time = models_.mean(Metric::kProcTime, config);
  return m;
}

std::optional<std::pair<eva::JointConfig, sched::ScheduleResult>>
PamoScheduler::random_feasible(Rng& rng) const {
  const auto& space = workload_.space;
  const std::size_t num_res = space.resolutions().size();
  const std::size_t num_fps = space.fps_knobs().size();
  // Start unconstrained; shrink the knob caps after failed attempts so we
  // always find something schedulable on heavily loaded workloads.
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    const std::size_t shrink = attempt / 8;
    const std::size_t cap_res = num_res > shrink ? num_res - shrink : 1;
    const std::size_t cap_fps = num_fps > shrink ? num_fps - shrink : 1;
    eva::JointConfig config(workload_.num_streams());
    for (auto& c : config) {
      c.resolution = space.resolutions()[rng.uniform_index(cap_res)];
      c.fps = space.fps_knobs()[rng.uniform_index(cap_fps)];
    }
    sched::ScheduleResult schedule =
        sched::schedule_zero_jitter(workload_, config);
    if (schedule.feasible) {
      return std::make_pair(std::move(config), std::move(schedule));
    }
  }
  return std::nullopt;
}

PamoScheduler::Observation PamoScheduler::observe(
    const eva::JointConfig& config, sched::ScheduleResult schedule,
    Rng& rng) {
  Observation obs;
  obs.config = config;
  obs.schedule = std::move(schedule);
  obs.unit = workload_.space.joint_to_unit(config);

  eva::TelemetryCorruption* telemetry = options_.telemetry;
  const bool corrupting = telemetry != nullptr && telemetry->enabled();

  const eva::Profiler profiler;
  std::vector<eva::StreamMeasurement> measurements;
  std::vector<double> latencies;
  std::vector<eva::StreamConfig> feed_configs;
  std::vector<eva::StreamMeasurement> feed_measurements;
  measurements.reserve(config.size());
  latencies.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    Rng stream_rng = rng.fork(profiles_taken_ * 1000 + i);
    eva::StreamMeasurement meas =
        profiler.measure(workload_.clips[i], config[i], stream_rng);
    bool feed = true;
    if (corrupting) {
      const std::uint64_t tag = 0xB0000000ULL + profiles_taken_ * 1000 + i;
      if (!telemetry->corrupt(meas, i, tag)) {
        // Report lost: stand in the models' current belief so the
        // aggregate stays defined — but never feed it back (a model
        // retrained on its own predictions learns nothing).
        meas = model_mean_measurement(config[i]);
        ++health_.samples_rejected;
        feed = false;
      } else {
        bool repaired = false;
        auto fix = [&](double& field, Metric metric) {
          if (!std::isfinite(field)) {
            field = models_.mean(metric, config[i]);
            repaired = true;
          }
        };
        fix(meas.accuracy, Metric::kAccuracy);
        fix(meas.bandwidth_mbps, Metric::kBandwidth);
        fix(meas.compute_tflops, Metric::kCompute);
        fix(meas.power_watts, Metric::kPower);
        fix(meas.proc_time, Metric::kProcTime);
        if (repaired) {
          ++health_.samples_repaired;
          feed = false;  // a repaired row is belief, not evidence
        }
      }
    }
    measurements.push_back(meas);
    // Measured e2e latency: noisy processing time + transfer of the
    // measured frame bits over the assigned uplink (Eq. 5); the schedule
    // is zero-jitter so there is no queueing term.
    const double bits =
        measurements.back().bandwidth_mbps * 1e6 / config[i].fps;
    const double uplink = obs.schedule.uplink_per_parent[i];
    latencies.push_back(measurements.back().proc_time + bits / (uplink * 1e6));
    if (feed) {
      feed_configs.push_back(config[i]);
      feed_measurements.push_back(meas);
    }
  }
  ++profiles_taken_;
  obs.raw = eva::aggregate_outcomes(measurements, latencies);
  obs.normalized = normalizer_.normalize(obs.raw);

  // Feed the outcome models (respecting the training-size cap: past the
  // cap the models are informative enough and refits dominate runtime).
  if (model_points_ < options_.max_model_points && !feed_configs.empty()) {
    models_.update(feed_configs, feed_measurements);
    model_points_ += feed_configs.size();
  }
  return obs;
}

eva::OutcomeVector PamoScheduler::outcomes_from_tables(
    const std::vector<la::Matrix>& tables, std::size_t sample,
    const eva::JointConfig& config,
    const sched::ScheduleResult& schedule) const {
  std::vector<std::size_t> grid_rows;
  grid_rows.reserve(config.size());
  for (const auto& c : config) grid_rows.push_back(models_.grid_index(c));
  return outcomes_from_rows(tables, sample, grid_rows, config, schedule);
}

eva::OutcomeVector PamoScheduler::outcomes_from_rows(
    const std::vector<la::Matrix>& tables, std::size_t sample,
    const std::vector<std::size_t>& grid_rows, const eva::JointConfig& config,
    const sched::ScheduleResult& schedule) const {
  const auto m = static_cast<double>(config.size());
  eva::OutcomeVector y{};
  for (std::size_t i = 0; i < config.size(); ++i) {
    const std::size_t g = grid_rows[i];
    const double acc =
        tables[static_cast<std::size_t>(Metric::kAccuracy)](sample, g);
    const double bw =
        tables[static_cast<std::size_t>(Metric::kBandwidth)](sample, g);
    const double com =
        tables[static_cast<std::size_t>(Metric::kCompute)](sample, g);
    const double eng =
        tables[static_cast<std::size_t>(Metric::kPower)](sample, g);
    const double proc =
        tables[static_cast<std::size_t>(Metric::kProcTime)](sample, g);
    eva::at(y, eva::Objective::kAccuracy) += acc / m;
    eva::at(y, eva::Objective::kNetwork) += std::max(0.0, bw);
    eva::at(y, eva::Objective::kCompute) += std::max(0.0, com);
    eva::at(y, eva::Objective::kEnergy) += std::max(0.0, eng);
    const double bits = std::max(0.0, bw) * 1e6 / config[i].fps;
    const double uplink = schedule.uplink_per_parent[i];
    eva::at(y, eva::Objective::kLatency) +=
        (std::max(0.0, proc) + bits / (uplink * 1e6)) / m;
  }
  return y;
}

double PamoScheduler::utility(const eva::OutcomeVector& normalized,
                              const pref::PreferenceOracle& oracle) const {
  if (options_.use_true_preference) {
    return oracle.benefit().value(normalized);
  }
  PAMO_ASSERT(active_learner_ != nullptr, "preference model missing");
  return active_learner_->model().utility_mean(to_vector(normalized));
}

void PamoScheduler::heuristic_fallback(PamoResult& result,
                                       const pref::PreferenceOracle& oracle,
                                       Rng& rng) {
  health_.heuristic_fallback = true;
  if (!models_.is_fit()) return;  // nothing to score with
  // One clean "scenario" built from posterior point estimates — no MC
  // sampling, no acquisition, just Algorithm 1 feasibility plus the
  // models' best guess of each candidate's utility.
  const la::Matrix means = models_.mean_grid_table();
  const std::size_t grid_size = models_.grid().size();
  std::vector<la::Matrix> tables;
  tables.reserve(kNumMetrics);
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    la::Matrix t(1, grid_size);
    for (std::size_t g = 0; g < grid_size; ++g) t(0, g) = means(m, g);
    tables.push_back(std::move(t));
  }
  double best_utility = -1e300;
  for (std::size_t attempt = 0; attempt < 16; ++attempt) {
    auto drawn = random_feasible(rng);
    if (!drawn) continue;
    const auto& [config, schedule] = *drawn;
    const eva::OutcomeVector y =
        outcomes_from_tables(tables, 0, config, schedule);
    const double u = utility(normalizer_.normalize(y), oracle);
    if (u > best_utility) {
      best_utility = u;
      result.best_config = config;
      result.best_schedule = schedule;
      result.feasible = true;
    }
  }
}

PamoResult PamoScheduler::run(pref::PreferenceOracle& oracle) {
  PAMO_SPAN("pamo.run");
  Rng rng(options_.seed);
  PamoResult result;
  health_ = {};
  const std::size_t queries_before = oracle.queries_answered();
  const bool corrupting =
      options_.telemetry != nullptr && options_.telemetry->enabled();
  bo::EpochWatchdog watchdog(options_.watchdog);
  watchdog.arm();

  // ---- Phase 1: outcome-function fitting (Alg. 2 lines 1–4). ----
  // Warm-started diagnostics baseline: the transplanted bank carries
  // counters from previous epochs; health reports this epoch's deltas.
  gp::GpFitDiagnostics warm_base;
  const bool warm =
      options_.warm_start != nullptr && options_.warm_start->is_fit();
  if (warm) {
    PAMO_SPAN("pamo.phase1_warm_start");
    // Continual learning: transplant the retained bank — posteriors,
    // noise downweights, and drift-detector state included — and
    // re-anchor it with a few fresh profiles through the incremental
    // update path. The expensive MLE refit never runs.
    models_ = *options_.warm_start;
    model_points_ = models_.num_points();
    warm_base = models_.diagnostics();
    health_.warm_started = true;
    std::vector<eva::StreamConfig> configs;
    std::vector<eva::StreamMeasurement> measurements;
    const eva::Profiler profiler;
    configs.reserve(options_.warm_profiles);
    for (std::size_t u = 0; u < options_.warm_profiles; ++u) {
      const auto& clip = workload_.clips[u % workload_.num_streams()];
      const eva::StreamConfig config = workload_.space.sample(rng);
      Rng sample_rng = rng.fork(0xA000 + u);
      eva::StreamMeasurement meas = profiler.measure(clip, config, sample_rng);
      if (corrupting && !options_.telemetry->corrupt(
                            meas, u % workload_.num_streams(), 0xA000 + u)) {
        ++health_.samples_rejected;  // report lost before it reached us
        continue;
      }
      configs.push_back(config);
      measurements.push_back(meas);
    }
    if (model_points_ < options_.max_model_points && !configs.empty()) {
      models_.update(configs, measurements);
      model_points_ += configs.size();
    }
    profiles_taken_ = options_.warm_profiles;
  } else {
    PAMO_SPAN("pamo.phase1_outcome_fit");
    std::vector<eva::StreamConfig> configs;
    std::vector<eva::StreamMeasurement> measurements;
    const eva::Profiler profiler;
    configs.reserve(options_.init_profiles);
    for (std::size_t u = 0; u < options_.init_profiles; ++u) {
      const auto& clip = workload_.clips[u % workload_.num_streams()];
      const eva::StreamConfig config = workload_.space.sample(rng);
      Rng sample_rng = rng.fork(0xA000 + u);
      eva::StreamMeasurement meas = profiler.measure(clip, config, sample_rng);
      if (corrupting && !options_.telemetry->corrupt(
                            meas, u % workload_.num_streams(), 0xA000 + u)) {
        ++health_.samples_rejected;  // report lost before it reached us
        continue;
      }
      // Non-finite fields survive here on purpose: the (hardened) outcome
      // GPs reject those rows per metric and count them.
      configs.push_back(config);
      measurements.push_back(meas);
    }
    models_.fit(configs, measurements);
    model_points_ = configs.size();
    profiles_taken_ = options_.init_profiles;
  }

  // ---- Phase 2: system preference modeling (lines 5–11). ----
  {
    PAMO_SPAN("pamo.phase2_preference");
    if (!options_.use_true_preference && options_.shared_learner != nullptr) {
      // Long-running mode: the operator's preference is already (partially)
      // learned; reuse it and let the in-loop updates keep refining it.
      active_learner_ = options_.shared_learner;
    } else if (!options_.use_true_preference) {
      std::vector<std::vector<double>> pool;
      pool.reserve(options_.pref_pool_size);
      for (std::size_t p = 0; p < options_.pref_pool_size; ++p) {
        auto drawn = random_feasible(rng);
        if (!drawn) continue;
        const auto& [config, schedule] = *drawn;
        // Model-mean outcome vector of the candidate (what the system can
        // show the decision-maker without extra measurements).
        eva::OutcomeVector y{};
        const auto m = static_cast<double>(config.size());
        for (std::size_t i = 0; i < config.size(); ++i) {
          const auto& c = config[i];
          eva::at(y, eva::Objective::kAccuracy) +=
              models_.mean(Metric::kAccuracy, c) / m;
          const double bw = models_.mean(Metric::kBandwidth, c);
          eva::at(y, eva::Objective::kNetwork) += bw;
          eva::at(y, eva::Objective::kCompute) +=
              models_.mean(Metric::kCompute, c);
          eva::at(y, eva::Objective::kEnergy) += models_.mean(Metric::kPower, c);
          const double bits = bw * 1e6 / c.fps;
          eva::at(y, eva::Objective::kLatency) +=
              (models_.mean(Metric::kProcTime, c) +
               bits / (schedule.uplink_per_parent[i] * 1e6)) /
              m;
        }
        pool.push_back(to_vector(normalizer_.normalize(y)));
      }
      PAMO_CHECK(pool.size() >= 2,
                 "could not build a preference candidate pool (workload "
                 "infeasible for nearly all configurations)");
      learner_.emplace(std::move(pool), options_.pref_learner,
                       rng.next_u64());
      learner_->run(oracle, options_.num_comparisons);
      active_learner_ = &*learner_;
    }
  }

  // Health bookkeeping shared by every exit path.
  auto finalize_health = [&]() {
    const gp::GpFitDiagnostics d = models_.diagnostics();
    // Deltas against the warm-start baseline (all-zero on a cold start),
    // so health always describes *this* epoch.
    health_.samples_rejected += d.rows_rejected - warm_base.rows_rejected;
    health_.outliers_downweighted =
        d.outliers_downweighted - warm_base.outliers_downweighted;
    health_.cholesky_recoveries =
        d.cholesky_recoveries - warm_base.cholesky_recoveries;
    health_.drift_fires = d.drift_fires - warm_base.drift_fires;
    health_.drift_downweighted =
        d.drift_downweighted - warm_base.drift_downweighted;
    health_.max_jitter_applied = std::max(d.fit_jitter, d.posterior_jitter);
    health_.iteration_failures = watchdog.failures();
    if (watchdog.fired()) health_.watchdog_fires = 1;
    if (!options_.use_true_preference && active_learner_ != nullptr) {
      health_.inconsistent_pairs =
          active_learner_->model().num_inconsistent_pairs();
    }
    result.health = health_;
  };

  // ---- Phase 3: best-configuration solving (lines 12–26). ----
  std::vector<Observation> observed;
  for (std::size_t i = 0; i < options_.init_observations; ++i) {
    if (watchdog.breached()) break;
    auto drawn = random_feasible(rng);
    if (!drawn) break;
    if (!watchdog.enabled()) {
      observed.push_back(observe(drawn->first, std::move(drawn->second), rng));
      continue;
    }
    try {
      observed.push_back(observe(drawn->first, std::move(drawn->second), rng));
    } catch (const Error& e) {
      watchdog.record_failure(e.what());
    }
  }
  if (observed.empty()) {
    result.feasible = false;
    heuristic_fallback(result, oracle, rng);
    result.oracle_queries = oracle.queries_answered() - queries_before;
    result.profiles_taken = profiles_taken_;
    finalize_health();
    return result;
  }

  const std::size_t dim = 2 * workload_.num_streams();
  double z_prev = -1e300;
  // One BO iteration; returns false to stop the loop.
  auto step = [&](std::size_t iter) {
    PAMO_SPAN("pamo.bo_iteration");
    PAMO_COUNT("bo.iterations", 1);
    // Incumbents: the best few observed configurations by current utility.
    std::vector<std::size_t> obs_order(observed.size());
    for (std::size_t i = 0; i < obs_order.size(); ++i) obs_order[i] = i;
    std::stable_sort(obs_order.begin(), obs_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return utility(observed[a].normalized, oracle) >
                              utility(observed[b].normalized, oracle);
                     });
    std::vector<std::vector<double>> incumbents;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, obs_order.size());
         ++i) {
      incumbents.push_back(observed[obs_order[i]].unit);
    }

    // Candidate pool: quasi-random + mutations, scheduled by Algorithm 1.
    const auto raw_pool =
        bo::make_candidate_pool(dim, incumbents, options_.pool, rng);
    std::vector<eva::JointConfig> pool_configs;
    std::vector<sched::ScheduleResult> pool_schedules;
    for (const auto& unit : raw_pool) {
      if (pool_configs.size() >= options_.max_pool_feasible) break;
      eva::JointConfig config = workload_.space.joint_from_unit(unit);
      sched::ScheduleResult schedule =
          sched::schedule_zero_jitter(workload_, config);
      if (!schedule.feasible) continue;  // zero-jitter constraint (Const2)
      pool_configs.push_back(std::move(config));
      pool_schedules.push_back(std::move(schedule));
    }
    if (pool_configs.empty()) return false;

    // Joint MC scenarios over the knob grid.
    const std::size_t num_samples = options_.mc_samples;
    const auto tables = models_.sample_grid_tables(num_samples, rng);

    // Pre-resolve each candidate's knob-grid rows once; grid_index() is a
    // linear scan and would otherwise run once per scenario cell.
    auto grid_rows_of = [&](const eva::JointConfig& config) {
      std::vector<std::size_t> rows;
      rows.reserve(config.size());
      for (const auto& c : config) rows.push_back(models_.grid_index(c));
      return rows;
    };
    const std::size_t num_pool = pool_configs.size();
    const std::size_t num_obs = observed.size();
    std::vector<std::vector<std::size_t>> pool_rows;
    pool_rows.reserve(num_pool);
    for (const auto& config : pool_configs) {
      pool_rows.push_back(grid_rows_of(config));
    }
    std::vector<std::vector<std::size_t>> obs_rows;
    obs_rows.reserve(num_obs);
    for (const auto& obs : observed) obs_rows.push_back(grid_rows_of(obs.config));

    // Scenario evaluations are independent (tables are pre-sampled and the
    // preference model is read-only here), so fan out over every
    // (sample, candidate) cell: each cell is a pure function of its index,
    // making the result bit-identical at any thread count.
    la::Matrix z_pool(num_samples, num_pool);
    la::Matrix z_obs(num_samples, num_obs);
    {
      PAMO_SPAN("pamo.scenario_sweep");
      PAMO_COUNT("pamo.scenario_cells", num_samples * (num_pool + num_obs));
      parallel_for(
          num_samples * (num_pool + num_obs),
          [&](std::size_t idx) {
            const std::size_t s = idx / (num_pool + num_obs);
            const std::size_t c = idx % (num_pool + num_obs);
            if (c < num_pool) {
              const eva::OutcomeVector y = outcomes_from_rows(
                  tables, s, pool_rows[c], pool_configs[c], pool_schedules[c]);
              z_pool(s, c) = utility(normalizer_.normalize(y), oracle);
            } else {
              const std::size_t o = c - num_pool;
              const eva::OutcomeVector y = outcomes_from_rows(
                  tables, s, obs_rows[o], observed[o].config,
                  observed[o].schedule);
              z_obs(s, o) = utility(normalizer_.normalize(y), oracle);
            }
          },
          /*grain=*/16);
    }
    double best_observed = -1e300;
    for (const auto& obs : observed) {
      best_observed =
          std::max(best_observed, utility(obs.normalized, oracle));
    }

    const std::vector<double> scores = bo::acquisition_scores(
        options_.acquisition, z_pool, &z_obs, best_observed);
    const std::vector<std::size_t> batch =
        bo::select_top_batch(scores, options_.batch_size);

    // Observe the recommended batch (line 16: Profile_and_Algorithm1).
    double z_best_batch = -1e300;
    std::vector<std::vector<double>> new_outcomes;
    for (const std::size_t c : batch) {
      Observation obs =
          observe(pool_configs[c], std::move(pool_schedules[c]), rng);
      z_best_batch =
          std::max(z_best_batch, utility(obs.normalized, oracle));
      new_outcomes.push_back(to_vector(obs.normalized));
      observed.push_back(std::move(obs));
    }

    // Line 19: extend the preference data with the new outcome vectors.
    if (!options_.use_true_preference && options_.learn_in_loop) {
      active_learner_->extend_pool(new_outcomes);
      active_learner_->run(oracle, 1);
    }

    result.benefit_trace.push_back(z_best_batch);
    if (std::fabs(z_best_batch - z_prev) < options_.delta && iter > 0) {
      return false;  // line 21: |z − z_p| < δ
    }
    z_prev = z_best_batch;
    return true;
  };

  for (std::size_t iter = 0; iter < options_.max_iters; ++iter) {
    if (watchdog.breached()) break;
    ++result.iterations;
    if (!watchdog.enabled()) {
      if (!step(iter)) break;
      continue;
    }
    // Tolerant mode: a failed iteration (corrupt profile that defeats
    // repair, broken model refit) burns failure budget instead of killing
    // the epoch; the next iteration retries with what was gathered so far.
    try {
      if (!step(iter)) break;
    } catch (const Error& e) {
      watchdog.record_failure(e.what());
    }
  }

  // Final recommendation: the observed configuration with the highest
  // *believed* benefit (the model, not the ground truth, does the picking).
  std::size_t best = 0;
  double best_utility = -1e300;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double u = utility(observed[i].normalized, oracle);
    if (u > best_utility) {
      best_utility = u;
      best = i;
    }
  }
  result.feasible = true;
  result.best_config = observed[best].config;
  result.best_schedule = observed[best].schedule;
  result.oracle_queries = oracle.queries_answered() - queries_before;
  result.profiles_taken = profiles_taken_;
  finalize_health();
  PAMO_ENSURES(result.best_config.size() == workload_.num_streams(),
               "recommendation configures every parent stream");
  PAMO_ENSURES(result.best_schedule.feasible,
               "recommendation carries an Algorithm-1-feasible schedule");
  PAMO_ENSURES(result.benefit_trace.size() <= result.iterations,
               "one trace entry per completed BO iteration");
  return result;
}

}  // namespace pamo::core
