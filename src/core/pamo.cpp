#include "core/pamo.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace pamo::core {

namespace {

std::vector<double> to_vector(const eva::OutcomeVector& y) {
  return std::vector<double>(y.begin(), y.end());
}

}  // namespace

PamoScheduler::PamoScheduler(const eva::Workload& workload,
                             PamoOptions options)
    : workload_(workload),
      options_(std::move(options)),
      normalizer_(eva::OutcomeNormalizer::for_workload(workload)),
      models_(workload.space, options_.gp) {
  PAMO_CHECK(workload_.num_streams() > 0, "empty workload");
  PAMO_CHECK(options_.batch_size >= 1, "batch size must be >= 1");
}

std::optional<std::pair<eva::JointConfig, sched::ScheduleResult>>
PamoScheduler::random_feasible(Rng& rng) const {
  const auto& space = workload_.space;
  const std::size_t num_res = space.resolutions().size();
  const std::size_t num_fps = space.fps_knobs().size();
  // Start unconstrained; shrink the knob caps after failed attempts so we
  // always find something schedulable on heavily loaded workloads.
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    const std::size_t shrink = attempt / 8;
    const std::size_t cap_res = num_res > shrink ? num_res - shrink : 1;
    const std::size_t cap_fps = num_fps > shrink ? num_fps - shrink : 1;
    eva::JointConfig config(workload_.num_streams());
    for (auto& c : config) {
      c.resolution = space.resolutions()[rng.uniform_index(cap_res)];
      c.fps = space.fps_knobs()[rng.uniform_index(cap_fps)];
    }
    sched::ScheduleResult schedule =
        sched::schedule_zero_jitter(workload_, config);
    if (schedule.feasible) {
      return std::make_pair(std::move(config), std::move(schedule));
    }
  }
  return std::nullopt;
}

PamoScheduler::Observation PamoScheduler::observe(
    const eva::JointConfig& config, sched::ScheduleResult schedule,
    Rng& rng) {
  Observation obs;
  obs.config = config;
  obs.schedule = std::move(schedule);
  obs.unit = workload_.space.joint_to_unit(config);

  const eva::Profiler profiler;
  std::vector<eva::StreamMeasurement> measurements;
  std::vector<double> latencies;
  measurements.reserve(config.size());
  latencies.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    Rng stream_rng = rng.fork(profiles_taken_ * 1000 + i);
    measurements.push_back(
        profiler.measure(workload_.clips[i], config[i], stream_rng));
    // Measured e2e latency: noisy processing time + transfer of the
    // measured frame bits over the assigned uplink (Eq. 5); the schedule
    // is zero-jitter so there is no queueing term.
    const double bits =
        measurements.back().bandwidth_mbps * 1e6 / config[i].fps;
    const double uplink = obs.schedule.uplink_per_parent[i];
    latencies.push_back(measurements.back().proc_time + bits / (uplink * 1e6));
  }
  ++profiles_taken_;
  obs.raw = eva::aggregate_outcomes(measurements, latencies);
  obs.normalized = normalizer_.normalize(obs.raw);

  // Feed the outcome models (respecting the training-size cap: past the
  // cap the models are informative enough and refits dominate runtime).
  if (model_points_ < options_.max_model_points) {
    models_.update(config, measurements);
    model_points_ += config.size();
  }
  return obs;
}

eva::OutcomeVector PamoScheduler::outcomes_from_tables(
    const std::vector<la::Matrix>& tables, std::size_t sample,
    const eva::JointConfig& config,
    const sched::ScheduleResult& schedule) const {
  const auto m = static_cast<double>(config.size());
  eva::OutcomeVector y{};
  for (std::size_t i = 0; i < config.size(); ++i) {
    const std::size_t g = models_.grid_index(config[i]);
    const double acc =
        tables[static_cast<std::size_t>(Metric::kAccuracy)](sample, g);
    const double bw =
        tables[static_cast<std::size_t>(Metric::kBandwidth)](sample, g);
    const double com =
        tables[static_cast<std::size_t>(Metric::kCompute)](sample, g);
    const double eng =
        tables[static_cast<std::size_t>(Metric::kPower)](sample, g);
    const double proc =
        tables[static_cast<std::size_t>(Metric::kProcTime)](sample, g);
    eva::at(y, eva::Objective::kAccuracy) += acc / m;
    eva::at(y, eva::Objective::kNetwork) += std::max(0.0, bw);
    eva::at(y, eva::Objective::kCompute) += std::max(0.0, com);
    eva::at(y, eva::Objective::kEnergy) += std::max(0.0, eng);
    const double bits = std::max(0.0, bw) * 1e6 / config[i].fps;
    const double uplink = schedule.uplink_per_parent[i];
    eva::at(y, eva::Objective::kLatency) +=
        (std::max(0.0, proc) + bits / (uplink * 1e6)) / m;
  }
  return y;
}

double PamoScheduler::utility(const eva::OutcomeVector& normalized,
                              const pref::PreferenceOracle& oracle) const {
  if (options_.use_true_preference) {
    return oracle.benefit().value(normalized);
  }
  PAMO_ASSERT(active_learner_ != nullptr, "preference model missing");
  return active_learner_->model().utility_mean(to_vector(normalized));
}

PamoResult PamoScheduler::run(pref::PreferenceOracle& oracle) {
  Rng rng(options_.seed);
  PamoResult result;
  const std::size_t queries_before = oracle.queries_answered();

  // ---- Phase 1: outcome-function fitting (Alg. 2 lines 1–4). ----
  {
    std::vector<eva::StreamConfig> configs;
    std::vector<eva::StreamMeasurement> measurements;
    const eva::Profiler profiler;
    configs.reserve(options_.init_profiles);
    for (std::size_t u = 0; u < options_.init_profiles; ++u) {
      const auto& clip = workload_.clips[u % workload_.num_streams()];
      const eva::StreamConfig config = workload_.space.sample(rng);
      Rng sample_rng = rng.fork(0xA000 + u);
      configs.push_back(config);
      measurements.push_back(profiler.measure(clip, config, sample_rng));
    }
    models_.fit(configs, measurements);
    model_points_ = configs.size();
    profiles_taken_ = options_.init_profiles;
  }

  // ---- Phase 2: system preference modeling (lines 5–11). ----
  if (!options_.use_true_preference && options_.shared_learner != nullptr) {
    // Long-running mode: the operator's preference is already (partially)
    // learned; reuse it and let the in-loop updates keep refining it.
    active_learner_ = options_.shared_learner;
  } else if (!options_.use_true_preference) {
    std::vector<std::vector<double>> pool;
    pool.reserve(options_.pref_pool_size);
    for (std::size_t p = 0; p < options_.pref_pool_size; ++p) {
      auto drawn = random_feasible(rng);
      if (!drawn) continue;
      const auto& [config, schedule] = *drawn;
      // Model-mean outcome vector of the candidate (what the system can
      // show the decision-maker without extra measurements).
      eva::OutcomeVector y{};
      const auto m = static_cast<double>(config.size());
      for (std::size_t i = 0; i < config.size(); ++i) {
        const auto& c = config[i];
        eva::at(y, eva::Objective::kAccuracy) +=
            models_.mean(Metric::kAccuracy, c) / m;
        const double bw = models_.mean(Metric::kBandwidth, c);
        eva::at(y, eva::Objective::kNetwork) += bw;
        eva::at(y, eva::Objective::kCompute) +=
            models_.mean(Metric::kCompute, c);
        eva::at(y, eva::Objective::kEnergy) += models_.mean(Metric::kPower, c);
        const double bits = bw * 1e6 / c.fps;
        eva::at(y, eva::Objective::kLatency) +=
            (models_.mean(Metric::kProcTime, c) +
             bits / (schedule.uplink_per_parent[i] * 1e6)) /
            m;
      }
      pool.push_back(to_vector(normalizer_.normalize(y)));
    }
    PAMO_CHECK(pool.size() >= 2,
               "could not build a preference candidate pool (workload "
               "infeasible for nearly all configurations)");
    learner_.emplace(std::move(pool), options_.pref_learner,
                     rng.next_u64());
    learner_->run(oracle, options_.num_comparisons);
    active_learner_ = &*learner_;
  }

  // ---- Phase 3: best-configuration solving (lines 12–26). ----
  std::vector<Observation> observed;
  for (std::size_t i = 0; i < options_.init_observations; ++i) {
    auto drawn = random_feasible(rng);
    if (!drawn) break;
    observed.push_back(observe(drawn->first, std::move(drawn->second), rng));
  }
  if (observed.empty()) {
    result.feasible = false;
    return result;
  }

  const std::size_t dim = 2 * workload_.num_streams();
  double z_prev = -1e300;
  for (std::size_t iter = 0; iter < options_.max_iters; ++iter) {
    ++result.iterations;

    // Incumbents: the best few observed configurations by current utility.
    std::vector<std::size_t> obs_order(observed.size());
    for (std::size_t i = 0; i < obs_order.size(); ++i) obs_order[i] = i;
    std::stable_sort(obs_order.begin(), obs_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return utility(observed[a].normalized, oracle) >
                              utility(observed[b].normalized, oracle);
                     });
    std::vector<std::vector<double>> incumbents;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, obs_order.size());
         ++i) {
      incumbents.push_back(observed[obs_order[i]].unit);
    }

    // Candidate pool: quasi-random + mutations, scheduled by Algorithm 1.
    const auto raw_pool =
        bo::make_candidate_pool(dim, incumbents, options_.pool, rng);
    std::vector<eva::JointConfig> pool_configs;
    std::vector<sched::ScheduleResult> pool_schedules;
    for (const auto& unit : raw_pool) {
      if (pool_configs.size() >= options_.max_pool_feasible) break;
      eva::JointConfig config = workload_.space.joint_from_unit(unit);
      sched::ScheduleResult schedule =
          sched::schedule_zero_jitter(workload_, config);
      if (!schedule.feasible) continue;  // zero-jitter constraint (Const2)
      pool_configs.push_back(std::move(config));
      pool_schedules.push_back(std::move(schedule));
    }
    if (pool_configs.empty()) break;

    // Joint MC scenarios over the knob grid.
    const std::size_t num_samples = options_.mc_samples;
    const auto tables = models_.sample_grid_tables(num_samples, rng);

    // Scenario evaluations are independent (tables are pre-sampled and the
    // preference model is read-only here), so fan out across the pool.
    la::Matrix z_pool(num_samples, pool_configs.size());
    la::Matrix z_obs(num_samples, observed.size());
    parallel_for(num_samples, [&](std::size_t s) {
      for (std::size_t c = 0; c < pool_configs.size(); ++c) {
        const eva::OutcomeVector y = outcomes_from_tables(
            tables, s, pool_configs[c], pool_schedules[c]);
        z_pool(s, c) = utility(normalizer_.normalize(y), oracle);
      }
      for (std::size_t c = 0; c < observed.size(); ++c) {
        const eva::OutcomeVector y = outcomes_from_tables(
            tables, s, observed[c].config, observed[c].schedule);
        z_obs(s, c) = utility(normalizer_.normalize(y), oracle);
      }
    });
    double best_observed = -1e300;
    for (const auto& obs : observed) {
      best_observed =
          std::max(best_observed, utility(obs.normalized, oracle));
    }

    const std::vector<double> scores = bo::acquisition_scores(
        options_.acquisition, z_pool, &z_obs, best_observed);
    const std::vector<std::size_t> batch =
        bo::select_top_batch(scores, options_.batch_size);

    // Observe the recommended batch (line 16: Profile_and_Algorithm1).
    double z_best_batch = -1e300;
    std::vector<std::vector<double>> new_outcomes;
    for (const std::size_t c : batch) {
      Observation obs =
          observe(pool_configs[c], std::move(pool_schedules[c]), rng);
      z_best_batch =
          std::max(z_best_batch, utility(obs.normalized, oracle));
      new_outcomes.push_back(to_vector(obs.normalized));
      observed.push_back(std::move(obs));
    }

    // Line 19: extend the preference data with the new outcome vectors.
    if (!options_.use_true_preference && options_.learn_in_loop) {
      active_learner_->extend_pool(new_outcomes);
      active_learner_->run(oracle, 1);
    }

    result.benefit_trace.push_back(z_best_batch);
    if (std::fabs(z_best_batch - z_prev) < options_.delta && iter > 0) {
      break;  // line 21: |z − z_p| < δ
    }
    z_prev = z_best_batch;
  }

  // Final recommendation: the observed configuration with the highest
  // *believed* benefit (the model, not the ground truth, does the picking).
  std::size_t best = 0;
  double best_utility = -1e300;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double u = utility(observed[i].normalized, oracle);
    if (u > best_utility) {
      best_utility = u;
      best = i;
    }
  }
  result.feasible = true;
  result.best_config = observed[best].config;
  result.best_schedule = observed[best].schedule;
  result.oracle_queries = oracle.queries_answered() - queries_before;
  result.profiles_taken = profiles_taken_;
  return result;
}

}  // namespace pamo::core
