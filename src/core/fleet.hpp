// Fleet-scale hierarchical scheduling: shard the workload with the global
// allocator (sched/shard.hpp), run one trimmed PamoScheduler per shard in
// parallel, and merge the per-shard decisions into a flat PamoResult.
//
// Determinism contract: per-shard seeds are derived from the fleet seed
// and the shard *index* (never the worker thread), every shard runs
// against its own copy of the preference oracle, and the merge walks
// shards in index order — so the result is bit-identical at any
// ThreadPool size, including 1. The per-shard schedulers may only touch
// shared state read-only; the options check below rejects configurations
// that would mutate a shared learner from the fan-out.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pamo.hpp"
#include "sched/shard.hpp"

namespace pamo::core {

struct FleetOptions {
  /// Route SchedulingService epochs through the hierarchical path. Off by
  /// default: the flat service is bit-for-bit unchanged.
  bool enabled = false;
  /// Flat optimization below this many streams even when enabled (the
  /// hierarchy only pays for itself once the flat BO would be the
  /// bottleneck).
  std::size_t min_streams = 48;
  sched::ShardPlanOptions shard;
  /// Per-shard optimization template. The seed is re-derived per shard;
  /// the preference options must be fan-out safe: either use_true_preference
  /// (PaMO+, const oracle access only) or a shared_learner with
  /// learn_in_loop off (read-only model evaluation).
  PamoOptions pamo = [] {
    PamoOptions o;
    o.use_true_preference = true;
    o.init_profiles = 24;
    o.max_model_points = 96;
    o.init_observations = 3;
    o.mc_samples = 16;
    o.batch_size = 2;
    o.max_iters = 3;
    o.max_pool_feasible = 48;
    o.gp.mle_restarts = 1;
    o.gp.mle_max_evals = 60;
    return o;
  }();
};

/// Per-shard record of one fleet epoch (diagnostics; index == shard id).
struct FleetShardReport {
  std::size_t streams = 0;
  std::size_t servers = 0;
  bool feasible = false;
  std::size_t iterations = 0;
  /// Final model-estimated benefit of the shard's incumbent (0 when the
  /// shard produced no trace).
  double benefit = 0.0;
};

struct FleetReport {
  sched::ShardPlan plan;
  std::vector<FleetShardReport> shards;
};

/// One hierarchical scheduling epoch over the full fleet. Returns a flat
/// PamoResult in global id space: feasible iff every shard converged to a
/// feasible decision, best_config/best_schedule merged through the plan,
/// counters summed, iterations the per-shard maximum, benefit_trace a
/// single entry holding the mean final shard benefit. `report`, when
/// non-null, receives the plan and per-shard outcomes.
PamoResult run_fleet_epoch(const eva::Workload& workload,
                           const FleetOptions& options,
                           const pref::PreferenceOracle& oracle,
                           FleetReport* report = nullptr);

}  // namespace pamo::core
