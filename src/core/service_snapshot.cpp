// SchedulingService checkpoint serialization — the `pamo.service_state.v1`
// payload the daemon stores inside every `pamo.checkpoint.v1` envelope.
//
// What must be carried for bit-identical resume, and why:
//   * epoch_ — every per-epoch seed derives from (options.seed, epoch);
//   * the preference learner — pool, asked comparisons, the pair-selection
//     RNG mid-stream, and the exact Laplace posterior (a refit could land
//     on a bitwise-different MAP);
//   * telemetry-corruption dynamic state — the stuck-at memory repeats
//     *previous* readings, which a fresh model would not know;
//   * the fault plan — so a resumed daemon validates under the same
//     environment without re-configuration;
//   * last_good_ — the fallback decision for infeasible epochs, replayed
//     verbatim (hence the full split-stream schedule, not just knobs);
//   * the retained outcome models — the learned response surfaces
//     (training rows, factors, diagnostics) the ROADMAP's warm-start
//     work builds on.
// The workload itself is NOT serialized — it is the environment, not
// learned state — but a fingerprint of it guards restore against feeding
// a snapshot to a service built over a different workload.
#include <utility>

#include "ckpt/codec.hpp"
#include "ckpt/digest.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "core/service.hpp"

namespace pamo::core {

namespace json = obs::json;
namespace codec = ckpt::codec;

namespace {

constexpr const char* kServiceStateKind = "pamo.service_state.v1";

/// Fingerprint of the environment: stream/server counts, uplinks, knob
/// sets, and probes of every clip's response surfaces (the coefficients
/// are private; probing a few (r, s) points pins them just as hard).
std::uint64_t workload_fingerprint(const eva::Workload& workload) {
  ckpt::Fnv1a d;
  d.mix(std::uint64_t{workload.num_streams()});
  d.mix(std::uint64_t{workload.num_servers()});
  d.mix_all(workload.uplink_mbps);
  d.mix(std::uint64_t{workload.space.resolutions().size()});
  for (auto r : workload.space.resolutions()) d.mix(std::uint64_t{r});
  d.mix(std::uint64_t{workload.space.fps_knobs().size()});
  for (auto s : workload.space.fps_knobs()) d.mix(std::uint64_t{s});
  for (const auto& clip : workload.clips) {
    d.mix(clip.id());
    d.mix(clip.accuracy(640.0, 15.0));
    d.mix(clip.bits_per_frame(640.0));
    d.mix(clip.proc_time(640.0));
    d.mix(clip.power_watts(640.0, 15.0));
    d.mix(clip.compute_tflops(640.0, 15.0));
  }
  return d.value();
}

json::Value config_to_json(const eva::JointConfig& config) {
  json::Value arr = json::Value::array();
  for (const auto& c : config) {
    json::Value knobs = json::Value::array();
    knobs.push_back(json::Value(std::uint64_t{c.resolution}));
    knobs.push_back(json::Value(std::uint64_t{c.fps}));
    arr.push_back(std::move(knobs));
  }
  return arr;
}

eva::JointConfig config_from_json(const json::Value& v) {
  eva::JointConfig config;
  for (const auto& item : v.items()) {
    PAMO_CHECK(item.items().size() == 2,
               "stream config snapshot must have two knobs");
    eva::StreamConfig c;
    c.resolution = static_cast<std::uint32_t>(item.items()[0].as_uint());
    c.fps = static_cast<std::uint32_t>(item.items()[1].as_uint());
    config.push_back(c);
  }
  return config;
}

// pamo-analyze: snapshot(ScheduleResult)
json::Value schedule_to_json(const sched::ScheduleResult& schedule) {
  json::Value obj = json::Value::object();
  obj.set("feasible", json::Value(schedule.feasible));
  json::Value streams = json::Value::array();
  for (const auto& s : schedule.streams) {
    json::Value stream = json::Value::object();
    stream.set("parent", json::Value(std::uint64_t{s.parent}));
    stream.set("period_ticks", json::Value(s.period_ticks));
    stream.set("proc_time", json::Value(s.proc_time));
    stream.set("bits_per_frame", json::Value(s.bits_per_frame));
    stream.set("resolution", json::Value(std::uint64_t{s.resolution}));
    streams.push_back(std::move(stream));
  }
  obj.set("streams", std::move(streams));
  obj.set("assignment", codec::uints_to_json(schedule.assignment));
  obj.set("phase", codec::doubles_to_json(schedule.phase));
  obj.set("uplink_per_parent",
          codec::doubles_to_json(schedule.uplink_per_parent));
  obj.set("latency_per_parent",
          codec::doubles_to_json(schedule.latency_per_parent));
  obj.set("comm_cost", json::Value(schedule.comm_cost));
  return obj;
}

// pamo-analyze: snapshot(ScheduleResult)
sched::ScheduleResult schedule_from_json(const json::Value& v) {
  sched::ScheduleResult schedule;
  schedule.feasible = v.at("feasible").as_bool();
  for (const auto& item : v.at("streams").items()) {
    sched::PeriodicStream s;
    s.parent = static_cast<std::size_t>(item.at("parent").as_uint());
    s.period_ticks = item.at("period_ticks").as_uint();
    s.proc_time = item.at("proc_time").as_double();
    s.bits_per_frame = item.at("bits_per_frame").as_double();
    s.resolution = static_cast<std::uint32_t>(item.at("resolution").as_uint());
    schedule.streams.push_back(s);
  }
  schedule.assignment = codec::uints_from_json(v.at("assignment"));
  schedule.phase = codec::doubles_from_json(v.at("phase"));
  schedule.uplink_per_parent =
      codec::doubles_from_json(v.at("uplink_per_parent"));
  schedule.latency_per_parent =
      codec::doubles_from_json(v.at("latency_per_parent"));
  schedule.comm_cost = v.at("comm_cost").as_double();
  PAMO_CHECK(schedule.assignment.size() == schedule.streams.size() &&
                 schedule.phase.size() == schedule.streams.size(),
             "schedule snapshot is internally inconsistent");
  return schedule;
}

// pamo-analyze: snapshot(FaultPlan)
json::Value fault_plan_to_json(const sim::FaultPlan& plan) {
  json::Value obj = json::Value::object();
  json::Value crashes = json::Value::array();
  for (const auto& c : plan.crashes()) {
    json::Value crash = json::Value::object();
    crash.set("server", json::Value(std::uint64_t{c.server}));
    crash.set("at", json::Value(c.at));
    crash.set("recovery", codec::time_to_json(c.recovery));
    crashes.push_back(std::move(crash));
  }
  obj.set("crashes", std::move(crashes));
  json::Value collapses = json::Value::array();
  for (const auto& c : plan.collapses()) {
    json::Value collapse = json::Value::object();
    collapse.set("server", json::Value(std::uint64_t{c.server}));
    collapse.set("at", json::Value(c.at));
    collapse.set("until", codec::time_to_json(c.until));
    collapse.set("factor", json::Value(c.factor));
    collapses.push_back(std::move(collapse));
  }
  obj.set("collapses", std::move(collapses));
  json::Value slowdowns = json::Value::array();
  for (const auto& s : plan.slowdowns()) {
    json::Value slow = json::Value::object();
    slow.set("server", json::Value(std::uint64_t{s.server}));
    slow.set("at", json::Value(s.at));
    slow.set("until", codec::time_to_json(s.until));
    slow.set("factor", json::Value(s.factor));
    slowdowns.push_back(std::move(slow));
  }
  obj.set("slowdowns", std::move(slowdowns));
  obj.set("frame_loss_prob", json::Value(plan.frame_loss_prob()));
  obj.set("frame_loss_seed", json::Value(plan.frame_loss_seed()));
  return obj;
}

// pamo-analyze: snapshot(FaultPlan)
sim::FaultPlan fault_plan_from_json(const json::Value& v) {
  sim::FaultPlan plan;
  for (const auto& item : v.at("crashes").items()) {
    plan.kill_server(static_cast<std::size_t>(item.at("server").as_uint()),
                     item.at("at").as_double(),
                     codec::time_from_json(item.at("recovery")));
  }
  for (const auto& item : v.at("collapses").items()) {
    plan.collapse_uplink(static_cast<std::size_t>(item.at("server").as_uint()),
                         item.at("at").as_double(),
                         item.at("factor").as_double(),
                         codec::time_from_json(item.at("until")));
  }
  for (const auto& item : v.at("slowdowns").items()) {
    plan.slow_server(static_cast<std::size_t>(item.at("server").as_uint()),
                     item.at("at").as_double(), item.at("factor").as_double(),
                     codec::time_from_json(item.at("until")));
  }
  const double loss = v.at("frame_loss_prob").as_double();
  if (loss > 0.0) plan.drop_frames(loss, v.at("frame_loss_seed").as_uint());
  return plan;
}

}  // namespace

// pamo-analyze: snapshot(SchedulingService)
json::Value SchedulingService::snapshot() const {
  json::Value state = json::Value::object();
  state.set("kind", json::Value(kServiceStateKind));
  state.set("epoch", json::Value(std::uint64_t{epoch_}));
  state.set("workload_fingerprint",
            json::Value(workload_fingerprint(workload_)));
  state.set("learner", learner_ ? learner_->snapshot() : json::Value());
  state.set("telemetry", telemetry_ ? telemetry_->snapshot() : json::Value());
  state.set("fault_plan",
            fault_plan_ ? fault_plan_to_json(*fault_plan_) : json::Value());
  if (last_good_.has_value()) {
    json::Value last_good = json::Value::object();
    last_good.set("config", config_to_json(last_good_->config));
    last_good.set("schedule", schedule_to_json(last_good_->schedule));
    state.set("last_good", std::move(last_good));
  } else {
    state.set("last_good", json::Value());
  }
  state.set("models",
            retained_models_ ? retained_models_->snapshot() : json::Value());
  // Churn/governor state is emitted only when the feature is in use, so a
  // churn-free service's snapshot stays byte-identical to pre-churn
  // builds (and old readers never see unknown keys).
  if (churn_.enabled()) state.set("churn", churn_.snapshot());
  if (options_.governor.enabled) state.set("governor", governor_.snapshot());
  PAMO_ENSURES(state.find("kind") != nullptr &&
                   state.find("workload_fingerprint") != nullptr,
               "service snapshot must be self-describing so restore() can "
               "reject mismatched state");
  return state;
}

// pamo-analyze: snapshot(SchedulingService)
void SchedulingService::restore(const json::Value& state) {
  PAMO_CHECK(state.at("kind").as_string() == kServiceStateKind,
             "unsupported service-state snapshot kind");
  PAMO_CHECK(
      state.at("workload_fingerprint").as_uint() ==
          workload_fingerprint(workload_),
      "service snapshot was taken over a different workload");
  epoch_ = static_cast<std::size_t>(state.at("epoch").as_uint());

  const json::Value& learner = state.at("learner");
  if (learner.kind() != json::Value::Kind::kNull) {
    // Construct over the snapshot pool (the ctor's cold refit is then
    // overwritten by the exact posterior transplant in restore()).
    // "pool" lives inside the learner sub-object and is written by
    // PreferenceLearner::snapshot(), not by this encoder.
    // pamo-analyze: allow(snapshot-coverage)
    learner_.emplace(codec::rows_from_json(learner.at("pool")),
                     options_.initial.pref_learner, options_.seed + 0xB01);
    learner_->restore(learner);
  } else {
    learner_.reset();
  }

  const json::Value& telemetry = state.at("telemetry");
  if (telemetry.kind() != json::Value::Kind::kNull) {
    telemetry_.emplace();
    telemetry_->restore(telemetry);
  } else {
    telemetry_.reset();
  }

  const json::Value& fault_plan = state.at("fault_plan");
  if (fault_plan.kind() != json::Value::Kind::kNull) {
    fault_plan_ = fault_plan_from_json(fault_plan);
  } else {
    fault_plan_.reset();
  }

  const json::Value& last_good = state.at("last_good");
  if (last_good.kind() != json::Value::Kind::kNull) {
    last_good_ = LastGood{config_from_json(last_good.at("config")),
                          schedule_from_json(last_good.at("schedule"))};
  } else {
    last_good_.reset();
  }

  // Optional (post-v1 but version-compatible) churn/governor state: old
  // snapshots simply lack the keys and restore to the features-off state.
  const json::Value* churn = state.find("churn");
  if (churn != nullptr && churn->kind() != json::Value::Kind::kNull) {
    churn_ = eva::ChurnPlan::restore(*churn);
  } else {
    churn_ = eva::ChurnPlan();
  }
  const json::Value* governor = state.find("governor");
  if (governor != nullptr && governor->kind() != json::Value::Kind::kNull) {
    governor_.restore(*governor);
  } else {
    governor_ = AdmissionGovernor(options_.governor);
  }

  const json::Value& models = state.at("models");
  if (models.kind() != json::Value::Kind::kNull) {
    // The bank must carry the GpOptions it was actually fit under. The
    // scheduler hardens its options when telemetry corruption is active
    // (reject_nonfinite, robust_noise), and warm-started epochs transplant
    // this bank back into a scheduler and *update* it — restoring it with
    // the unhardened options would make the first post-resume update throw
    // on a NaN profile the live lineage silently drops.
    PamoOptions bank_options =
        epoch_ <= 1 ? options_.initial : options_.steady;
    if (telemetry_.has_value()) bank_options.telemetry = &*telemetry_;
    bank_options = PamoScheduler::harden(std::move(bank_options));
    retained_models_.emplace(workload_.space, bank_options.gp);
    retained_models_->restore(models);
  } else {
    retained_models_.reset();
  }
}

}  // namespace pamo::core
