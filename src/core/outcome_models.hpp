// The five per-objective outcome models f = [f_acc, f_com, f_net, f_eng,
// f_lct] of Algorithm 2, realized as Gaussian processes over the 2-D
// (resolution, fps) knob space (the Figure 8 protocol: one model per
// metric, trained on pooled noisy per-stream profiles; clip-to-clip
// variation is absorbed as observation noise).
//
// Because the knob sets are small, the models expose *joint posterior
// samples over the whole knob grid*: one (S × |grid|) table per metric.
// Evaluating any candidate joint configuration under MC scenario s is then
// a table lookup per stream — this is what makes qNEI over hundreds of
// pool candidates affordable.
#pragma once

#include <cstdint>
#include <vector>

#include "eva/config.hpp"
#include "eva/profiler.hpp"
#include "gp/gp_regressor.hpp"
#include "obs/json.hpp"

namespace pamo::core {

/// Metric indices inside the model bank (order is internal).
enum class Metric : std::size_t {
  kAccuracy = 0,
  kBandwidth = 1,
  kCompute = 2,
  kPower = 3,
  kProcTime = 4,
};
inline constexpr std::size_t kNumMetrics = 5;

class OutcomeModels {
 public:
  explicit OutcomeModels(const eva::ConfigSpace& space,
                         gp::GpOptions gp_options = {});

  /// Fit all five GPs from profiled (config, measurement) pairs.
  void fit(const std::vector<eva::StreamConfig>& configs,
           const std::vector<eva::StreamMeasurement>& measurements);

  /// Append new profiles; hyperparameters are kept (cheap refit).
  void update(const std::vector<eva::StreamConfig>& configs,
              const std::vector<eva::StreamMeasurement>& measurements);

  [[nodiscard]] bool is_fit() const;

  /// Training points held by the largest metric GP (the bank feeds all
  /// five the same rows; they can differ only when a hardened GP rejected
  /// non-finite rows of one metric).
  [[nodiscard]] std::size_t num_points() const;

  /// Posterior mean of a metric at one configuration.
  [[nodiscard]] double mean(Metric metric,
                            const eva::StreamConfig& config) const;

  /// Index of a configuration in the knob grid.
  [[nodiscard]] std::size_t grid_index(const eva::StreamConfig& config) const;
  [[nodiscard]] const std::vector<eva::StreamConfig>& grid() const {
    return grid_;
  }

  /// Joint posterior sample tables over the knob grid: result[m] is an
  /// (S × |grid|) matrix for metric m. Samples of different metrics are
  /// independent; within a metric, samples are jointly drawn over the grid.
  [[nodiscard]] std::vector<la::Matrix> sample_grid_tables(
      std::size_t num_samples, Rng& rng) const;

  /// Posterior-mean table over the grid (one row per metric).
  [[nodiscard]] la::Matrix mean_grid_table() const;

  /// Robustness diagnostics aggregated across the five metric GPs
  /// (counts summed, jitters maxed).
  [[nodiscard]] gp::GpFitDiagnostics diagnostics() const;

  /// Serialize all five metric GPs (grid geometry is derived from the
  /// ConfigSpace at construction and is not serialized).
  [[nodiscard]] obs::json::Value snapshot() const;

  /// Rebuild the five GPs from snapshot(). Must be constructed with the
  /// same ConfigSpace and GpOptions as the snapshotted instance.
  void restore(const obs::json::Value& snap);

 private:
  // grid_/grid_inputs_ are derived from the ConfigSpace in the ctor
  // (pure function of the workload, not learned state).
  // pamo-analyze: allow(snapshot-coverage)
  std::vector<eva::StreamConfig> grid_;
  // pamo-analyze: allow(snapshot-coverage)
  std::vector<std::vector<double>> grid_inputs_;
  std::vector<gp::GpRegressor> models_;  // one per metric
};

}  // namespace pamo::core
