// Restartable serving daemon — the process shell around SchedulingService.
//
// The paper's operating loop (Figure 1) is a long-lived process: it
// collects, re-optimizes, repairs, and keeps going. A real deployment of
// that loop dies — OOM kills, node reboots, power cuts — and everything
// the service *learned* (the preference posterior, the outcome models,
// telemetry stuck-at memory, the last-known-good schedule) is state a
// restart must not lose. Daemon wraps the service in a simulated-tick
// epoch loop that checkpoints on a configurable cadence (plus immediately
// after repairs, when the decision just changed under the operator's
// feet) through the crash-consistent ckpt store, and can resume from the
// newest valid snapshot such that every future epoch is bit-identical to
// the uninterrupted run — proven per epoch by the report digests that
// ride along inside the checkpoint.
//
// Kill points (ckpt::kill_point) cover the loop itself:
//   daemon.epoch.begin       before an epoch runs (work since the last
//                            checkpoint is the replayed window)
//   daemon.epoch.pre_commit  epoch computed, checkpoint not yet written
//   daemon.epoch.committed   checkpoint durable, outcome not yet returned
// plus the five ckpt.write.* points inside write_file_atomic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/service.hpp"

namespace pamo::core {

struct DaemonOptions {
  /// Directory of the checkpoint store (created if missing).
  std::string checkpoint_dir;
  /// Checkpoint after every N completed epochs; 0 disables cadence
  /// checkpoints (repair-triggered and explicit ones still happen).
  std::size_t checkpoint_every = 1;
  /// Also checkpoint immediately after an epoch whose decision was
  /// repaired or fell back — the moments the learned state just earned
  /// its keep and re-deriving it would be most expensive.
  bool checkpoint_after_repair = true;
  /// Valid snapshots retained on disk (older ones pruned); 0 keeps all.
  std::size_t keep_checkpoints = 4;
  /// Simulated-clock advance per epoch (the daemon's notion of time; it
  /// rides in the checkpoint so a resumed daemon's clock is continuous).
  std::uint64_t ticks_per_epoch = 100;
};

/// One repair the service performed, remembered across restarts (the
/// service's own EpochReport is transient; the daemon's log is cumulative
/// and checkpointed).
struct RepairLogEntry {
  std::size_t epoch = 0;
  RepairKind kind = RepairKind::kFallbackSchedule;
  std::string detail;
};

class Daemon {
 public:
  Daemon(eva::Workload workload, ServiceOptions service_options,
         DaemonOptions options);

  /// Restore from the newest valid checkpoint in the store, if any.
  /// Returns the sequence resumed from, or nullopt when the store holds
  /// no readable snapshot (fresh start). Call before the first step().
  std::optional<std::uint64_t> resume();

  struct EpochOutcome {
    SchedulingService::EpochReport report;
    std::uint64_t digest = 0;  // digest_epoch(report)
    /// Sequence of the checkpoint this epoch committed, when one was due.
    std::optional<std::uint64_t> checkpoint_sequence;
  };

  /// Run one epoch: optimize + validate + repair via the service, advance
  /// the simulated clock, append to the digest trajectory and repair log,
  /// and checkpoint when the cadence or a repair calls for it.
  EpochOutcome step(pref::PreferenceOracle& oracle);

  /// step() `epochs` times.
  std::vector<EpochOutcome> run(pref::PreferenceOracle& oracle,
                                std::size_t epochs);

  /// Write a checkpoint now regardless of cadence; returns its sequence.
  std::uint64_t checkpoint_now();

  [[nodiscard]] SchedulingService& service() { return service_; }
  [[nodiscard]] const SchedulingService& service() const { return service_; }
  [[nodiscard]] const ckpt::CheckpointStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Per-epoch report digests since the daemon (lineage) started —
  /// restored from the checkpoint on resume, so a restarted daemon's
  /// trajectory can be compared against an uninterrupted run's in full.
  [[nodiscard]] const std::vector<std::uint64_t>& epoch_digests() const {
    return epoch_digests_;
  }
  [[nodiscard]] const std::vector<RepairLogEntry>& repair_log() const {
    return repair_log_;
  }
  /// Cumulative governor admission log (admit/defer/shed/release), same
  /// contract as repair_log(): the per-epoch report is transient, this
  /// survives restarts inside the checkpoint. Empty when the governor
  /// never acted — and then absent from the checkpoint payload, so
  /// churn-free lineages keep their pre-governor checkpoint bytes.
  [[nodiscard]] const std::vector<GovernorAction>& governor_log() const {
    return governor_log_;
  }

 private:
  [[nodiscard]] obs::json::Value daemon_snapshot() const;
  void daemon_restore(const obs::json::Value& state);

  SchedulingService service_;
  ckpt::CheckpointStore store_;
  DaemonOptions options_;
  std::uint64_t ticks_ = 0;
  std::size_t epochs_since_checkpoint_ = 0;
  std::vector<std::uint64_t> epoch_digests_;
  std::vector<RepairLogEntry> repair_log_;
  std::vector<GovernorAction> governor_log_;
};

}  // namespace pamo::core
