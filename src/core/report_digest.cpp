#include "core/report_digest.hpp"

#include "ckpt/digest.hpp"

namespace pamo::core {

std::uint64_t digest_schedule(const sched::ScheduleResult& schedule) {
  ckpt::Fnv1a d;
  d.mix(schedule.feasible);
  d.mix_all(schedule.assignment);
  d.mix_all(schedule.phase);
  d.mix_all(schedule.uplink_per_parent);
  d.mix_all(schedule.latency_per_parent);
  d.mix(schedule.comm_cost);
  d.mix(std::uint64_t{schedule.streams.size()});
  return d.value();
}

// Stateless FNV fold: any well-formed report is a valid input and the only
// contract — bit-identical digests for bit-identical reports — is exactly
// what the ckpt restart matrix pins. pamo-analyze: allow(contract-coverage)
std::uint64_t digest_sim(const sim::SimReport& report) {
  ckpt::Fnv1a d;
  d.mix(std::uint64_t{report.per_stream.size()});
  for (const auto& s : report.per_stream) {
    d.mix(std::uint64_t{s.frames});
    d.mix(s.mean_latency);
    d.mix(s.min_latency);
    d.mix(s.max_latency);
    d.mix(s.jitter);
    d.mix(s.queue_delay);
    d.mix(std::uint64_t{s.emitted});
    d.mix(std::uint64_t{s.dropped});
    d.mix(std::uint64_t{s.slo_violations});
  }
  d.mix_all(report.latency_per_parent);
  d.mix(report.mean_latency);
  d.mix(report.max_jitter);
  d.mix(report.total_queue_delay);
  d.mix(std::uint64_t{report.total_frames});
  d.mix(std::uint64_t{report.total_emitted});
  d.mix(std::uint64_t{report.total_dropped});
  d.mix(std::uint64_t{report.dropped_by_loss});
  d.mix(std::uint64_t{report.slo_violations});
  d.mix(std::uint64_t{report.unserved_streams});
  d.mix_all(report.server_availability);
  d.mix_all(report.server_up_at_end);
  d.mix_all(report.uplink_factor_at_end);
  d.mix_all(report.slowdown_at_end);
  return d.value();
}

// Same story as digest_sim: a pure fold with no preconditions to state.
// pamo-analyze: allow(contract-coverage)
std::uint64_t digest_epoch(const SchedulingService::EpochReport& report) {
  ckpt::Fnv1a d;
  d.mix(std::uint64_t{report.epoch});
  d.mix(report.feasible);
  d.mix(report.fallback);
  d.mix(std::uint64_t{report.config.size()});
  for (const auto& c : report.config) {
    d.mix(std::uint64_t{c.resolution});
    d.mix(std::uint64_t{c.fps});
  }
  d.mix(digest_schedule(report.schedule));
  d.mix(digest_sim(report.sim));
  d.mix_all(report.benefit_trace);  // the BO trajectory, iteration by
                                    // iteration
  d.mix(std::uint64_t{report.oracle_queries});
  d.mix(report.repaired);
  if (report.repaired) {
    d.mix(std::uint64_t{report.repaired_config.size()});
    for (const auto& c : report.repaired_config) {
      d.mix(std::uint64_t{c.resolution});
      d.mix(std::uint64_t{c.fps});
    }
    d.mix(digest_schedule(report.repaired_schedule));
    d.mix(digest_sim(report.post_repair_sim));
  }
  d.mix(std::uint64_t{report.repairs.size()});
  for (const auto& r : report.repairs) {
    d.mix(std::uint64_t{static_cast<unsigned>(r.kind)});
    d.mix(r.detail);
  }
  d.mix(report.health.optimizer_error);
  d.mix(report.health.repair_error);
  d.mix(report.health.fallback_taken);
  d.mix(report.health.error_message);
  // Churn/governor surface — mixed only when something actually happened,
  // so a churn-free epoch's digest is unchanged from pre-churn builds.
  const auto& churn = report.churn;
  const bool churn_active =
      churn.arrived != 0 || churn.departed != 0 || churn.deferred != 0 ||
      churn.shed != 0 || churn.offered != churn.admitted ||
      churn.load_factor != 1.0 ||  // pamo-lint: allow(float-eq)
      !report.governor_actions.empty();
  if (churn_active) {
    d.mix(std::uint64_t{churn.offered});
    d.mix(std::uint64_t{churn.arrived});
    d.mix(std::uint64_t{churn.departed});
    d.mix(std::uint64_t{churn.admitted});
    d.mix(std::uint64_t{churn.deferred});
    d.mix(std::uint64_t{churn.shed});
    d.mix(churn.load_factor);
    d.mix(churn.offered_load);
    d.mix(churn.admitted_load);
    d.mix(std::uint64_t{report.governor_actions.size()});
    for (const auto& a : report.governor_actions) {
      d.mix(std::uint64_t{a.epoch});
      d.mix(a.stream);
      d.mix(std::uint64_t{static_cast<unsigned>(a.decision)});
      d.mix(a.detail);
    }
  }
  return d.value();
}

}  // namespace pamo::core
