#include "core/governor.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace pamo::core {

namespace {

/// Knob-floor load of one clip as a fraction of fleet capacity: the larger
/// of its uplink-bandwidth share and its compute-utilization share at the
/// cheapest (resolution, fps). A stream whose floor load is 0.1 needs a
/// tenth of the fleet on its best day — the honest lower bound on what
/// admitting it costs.
double floor_load(const eva::ClipProfile& clip, double res, double fps,
                  double total_uplink, double num_servers) {
  const double bw_share = clip.bandwidth_mbps(res, fps) / total_uplink;
  const double cpu_share = clip.proc_time(res) * fps / num_servers;
  return std::max(bw_share, cpu_share);
}

std::string load_detail(std::string what, double load, double budget) {
  std::string s = std::move(what);
  s += " (load ";
  s += std::to_string(load);
  s += " vs budget ";
  s += std::to_string(budget);
  s += ")";
  return s;
}

}  // namespace

const char* governor_decision_name(GovernorDecision decision) {
  switch (decision) {
    case GovernorDecision::kAdmit: return "admit";
    case GovernorDecision::kDefer: return "defer";
    case GovernorDecision::kShed: return "shed";
    case GovernorDecision::kRelease: return "release";
  }
  return "unknown";
}

AdmissionGovernor::AdmissionGovernor(GovernorOptions options)
    : options_(options) {
  PAMO_CHECK(options_.max_load > 0.0, "governor max_load must be > 0");
  PAMO_CHECK(options_.hysteresis >= 0.0 && options_.hysteresis < 1.0,
             "governor hysteresis must be in [0, 1)");
}

void AdmissionGovernor::record_action(GovernorPlan& plan, std::size_t epoch,
                                      std::uint64_t stream,
                                      GovernorDecision decision,
                                      std::string detail) {
  plan.actions.push_back({epoch, stream, decision, std::move(detail)});
}

GovernorPlan AdmissionGovernor::plan_epoch(std::size_t epoch,
                                           const eva::Workload& offered) {
  GovernorPlan plan;
  plan.offered = offered.num_streams();
  if (!options_.enabled) {
    plan.admitted.resize(plan.offered);
    for (std::size_t i = 0; i < plan.offered; ++i) plan.admitted[i] = i;
    plan.admitted_count = plan.offered;
    return plan;
  }
  PAMO_CHECK(offered.num_servers() > 0, "governor needs >= 1 server");

  // Per-stream knob-floor demand and marginal benefit (accuracy bought
  // per unit of fleet capacity at the floor).
  const double floor_res =
      static_cast<double>(offered.space.resolutions().front());
  const double floor_fps =
      static_cast<double>(offered.space.fps_knobs().front());
  double total_uplink = 0.0;
  for (double u : offered.uplink_mbps) total_uplink += u;
  const double servers = static_cast<double>(offered.num_servers());

  struct Candidate {
    std::size_t index = 0;
    std::uint64_t id = 0;
    double load = 0.0;
    double score = 0.0;
    bool incumbent = false;
  };
  std::vector<Candidate> streams;
  streams.reserve(plan.offered);
  for (std::size_t i = 0; i < plan.offered; ++i) {
    const auto& clip = offered.clips[i];
    Candidate c;
    c.index = i;
    c.id = clip.id();
    c.load = floor_load(clip, floor_res, floor_fps, total_uplink, servers);
    c.score = clip.accuracy(floor_res, floor_fps) / std::max(c.load, 1e-12);
    plan.offered_load += c.load;
    streams.push_back(c);
  }

  // Departures release their state: any remembered stream no longer
  // offered leaves the admitted set (logged), the retry queue, and the
  // shed list (both silently — no decision is being made about them).
  std::vector<std::uint64_t> offered_ids;
  offered_ids.reserve(streams.size());
  for (const auto& c : streams) offered_ids.push_back(c.id);
  std::sort(offered_ids.begin(), offered_ids.end());
  const auto is_offered = [&](std::uint64_t id) {
    return std::binary_search(offered_ids.begin(), offered_ids.end(), id);
  };
  for (std::uint64_t id : admitted_) {
    if (!is_offered(id)) {
      record_action(plan, epoch, id, GovernorDecision::kRelease,
                    "stream departed");
    }
  }
  admitted_.erase(
      std::remove_if(admitted_.begin(), admitted_.end(),
                     [&](std::uint64_t id) { return !is_offered(id); }),
      admitted_.end());
  deferred_.erase(
      std::remove_if(deferred_.begin(), deferred_.end(),
                     [&](const Deferred& d) { return !is_offered(d.stream); }),
      deferred_.end());
  shed_.erase(std::remove_if(shed_.begin(), shed_.end(),
                             [&](std::uint64_t id) { return !is_offered(id); }),
              shed_.end());

  for (auto& c : streams) {
    c.incumbent = std::binary_search(admitted_.begin(), admitted_.end(), c.id);
  }

  // Pass 1 — incumbents keep their slots in marginal-benefit order up to
  // the full max_load budget; the worst-scoring overflow is shed.
  std::vector<Candidate> incumbents;
  std::vector<Candidate> arrivals;
  for (const auto& c : streams) {
    (c.incumbent ? incumbents : arrivals).push_back(c);
  }
  const auto by_benefit = [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  std::sort(incumbents.begin(), incumbents.end(), by_benefit);

  std::vector<std::uint64_t> next_admitted;
  std::vector<std::size_t> admitted_indices;
  double load_sum = 0.0;
  const auto fits = [&](double load, double budget) {
    if (load_sum + load > budget) return false;
    return options_.max_streams == 0 ||
           next_admitted.size() < options_.max_streams;
  };
  for (const auto& c : incumbents) {
    if (fits(c.load, options_.max_load)) {
      load_sum += c.load;
      next_admitted.push_back(c.id);
      admitted_indices.push_back(c.index);
    } else {
      record_action(plan, epoch, c.id, GovernorDecision::kShed,
                    load_detail("overload: incumbent shed", c.load,
                                options_.max_load - load_sum));
      shed_.push_back(c.id);
    }
  }
  std::sort(shed_.begin(), shed_.end());

  // Pass 2 — arrivals and due retries compete for the hysteresis-reduced
  // headroom; losers back off exponentially until the retry budget runs
  // out. Arrivals already deferred or shed in earlier epochs keep their
  // state (counted below, no new decision).
  const double headroom = options_.max_load * (1.0 - options_.hysteresis);
  std::sort(arrivals.begin(), arrivals.end(), by_benefit);
  for (const auto& c : arrivals) {
    if (std::binary_search(shed_.begin(), shed_.end(), c.id)) continue;
    auto deferred_it =
        std::find_if(deferred_.begin(), deferred_.end(),
                     [&](const Deferred& d) { return d.stream == c.id; });
    const bool waiting =
        deferred_it != deferred_.end() && deferred_it->next_retry > epoch;
    if (waiting) continue;
    if (fits(c.load, headroom)) {
      record_action(
          plan, epoch, c.id, GovernorDecision::kAdmit,
          deferred_it != deferred_.end()
              ? load_detail("retry admitted", c.load, headroom - load_sum)
              : load_detail("arrival admitted", c.load, headroom - load_sum));
      load_sum += c.load;
      next_admitted.push_back(c.id);
      admitted_indices.push_back(c.index);
      if (deferred_it != deferred_.end()) deferred_.erase(deferred_it);
      continue;
    }
    const std::size_t retries =
        deferred_it == deferred_.end() ? 0 : deferred_it->retries;
    if (retries >= options_.max_defer_retries) {
      record_action(plan, epoch, c.id, GovernorDecision::kShed,
                    "retry budget exhausted after " + std::to_string(retries) +
                        " deferrals");
      if (deferred_it != deferred_.end()) deferred_.erase(deferred_it);
      shed_.push_back(c.id);
      std::sort(shed_.begin(), shed_.end());
      continue;
    }
    const std::size_t backoff = std::size_t{1} << retries;
    record_action(plan, epoch, c.id, GovernorDecision::kDefer,
                  load_detail("no headroom, retry in " +
                                  std::to_string(backoff) + " epochs",
                              c.load, headroom - load_sum));
    if (deferred_it != deferred_.end()) {
      deferred_it->retries = retries + 1;
      deferred_it->next_retry = epoch + backoff;
    } else {
      Deferred d;
      d.stream = c.id;
      d.retries = 1;
      d.next_retry = epoch + backoff;
      deferred_.insert(
          std::upper_bound(deferred_.begin(), deferred_.end(), d,
                           [](const Deferred& a, const Deferred& b) {
                             return a.stream < b.stream;
                           }),
          d);
    }
  }

  std::sort(next_admitted.begin(), next_admitted.end());
  std::sort(shed_.begin(), shed_.end());
  admitted_ = std::move(next_admitted);

  std::sort(admitted_indices.begin(), admitted_indices.end());
  plan.admitted = std::move(admitted_indices);
  plan.admitted_count = plan.admitted.size();
  plan.deferred = deferred_.size();
  plan.shed = shed_.size();
  plan.admitted_load = load_sum;
  PAMO_CHECK(plan.admitted_count + plan.deferred + plan.shed == plan.offered,
             "governor accounting: admitted + deferred + shed != offered");
  return plan;
}

// pamo-analyze: snapshot(AdmissionGovernor)
obs::json::Value AdmissionGovernor::snapshot() const {
  namespace json = obs::json;
  json::Value obj = json::Value::object();
  json::Value admitted = json::Value::array();
  for (std::uint64_t id : admitted_) {
    admitted.push_back(json::Value(static_cast<double>(id)));
  }
  obj.set("admitted", std::move(admitted));
  json::Value deferred = json::Value::array();
  for (const auto& d : deferred_) {
    json::Value entry = json::Value::object();
    entry.set("stream", json::Value(static_cast<double>(d.stream)));
    entry.set("retries", json::Value(static_cast<double>(d.retries)));
    entry.set("next_retry", json::Value(static_cast<double>(d.next_retry)));
    deferred.push_back(std::move(entry));
  }
  obj.set("deferred", std::move(deferred));
  json::Value shed = json::Value::array();
  for (std::uint64_t id : shed_) {
    shed.push_back(json::Value(static_cast<double>(id)));
  }
  obj.set("shed", std::move(shed));
  PAMO_ENSURES(obj.at("admitted").items().size() == admitted_.size() &&
                   obj.at("deferred").items().size() == deferred_.size() &&
                   obj.at("shed").items().size() == shed_.size(),
               "governor snapshot must cover every tracked stream");
  return obj;
}

// pamo-analyze: snapshot(AdmissionGovernor)
void AdmissionGovernor::restore(const obs::json::Value& snap) {
  // Restore rebuilds remembered state from a checkpoint: the decisions
  // were logged when they were made, so no new GovernorAction is emitted.
  admitted_.clear();  // pamo-lint: allow(governor-action)
  for (const auto& v : snap.at("admitted").items()) {
    // pamo-lint: allow(governor-action)
    admitted_.push_back(static_cast<std::uint64_t>(v.as_double()));
  }
  deferred_.clear();
  for (const auto& v : snap.at("deferred").items()) {
    Deferred d;
    d.stream = static_cast<std::uint64_t>(v.at("stream").as_double());
    d.retries = static_cast<std::size_t>(v.at("retries").as_double());
    d.next_retry = static_cast<std::size_t>(v.at("next_retry").as_double());
    deferred_.push_back(d);
  }
  shed_.clear();
  for (const auto& v : snap.at("shed").items()) {
    shed_.push_back(static_cast<std::uint64_t>(v.as_double()));
  }
  std::sort(admitted_.begin(), admitted_.end());
  std::sort(deferred_.begin(), deferred_.end(),
            [](const Deferred& a, const Deferred& b) {
              return a.stream < b.stream;
            });
  std::sort(shed_.begin(), shed_.end());
  PAMO_ENSURES(std::is_sorted(admitted_.begin(), admitted_.end()) &&
                   std::is_sorted(shed_.begin(), shed_.end()),
               "restored governor sets must be sorted for deterministic "
               "iteration");
}

}  // namespace pamo::core
