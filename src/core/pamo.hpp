// PaMO — the preference-aware Bayesian-optimization scheduler (§4, Alg. 2).
//
// Phase 1  Outcome-function fitting: profile per-stream metrics at random
//          knob configurations and fit the five outcome GPs.
// Phase 2  Preference modeling: build a pool of (model-predicted,
//          normalized) outcome vectors, then run EUBO-guided pairwise
//          comparison rounds against the decision-maker to train the
//          preference GP. (PaMO+ skips this and uses the true benefit
//          function — the paper's skyline variant.)
// Phase 3  BO loop: each iteration samples the outcome GPs jointly over
//          the knob grid, scores a candidate pool (quasi-random coverage +
//          incumbent mutations, each candidate scheduled by Algorithm 1 and
//          dropped if infeasible) with a Monte-Carlo batch acquisition
//          (qNEI by default), observes the best b candidates by actually
//          profiling them, updates both models, and stops when the best
//          benefit estimate moves less than δ (or at MaxIterNum).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bo/acquisition.hpp"
#include "bo/candidates.hpp"
#include "bo/watchdog.hpp"
#include "core/outcome_models.hpp"
#include "eva/outcomes.hpp"
#include "eva/telemetry.hpp"
#include "eva/workload.hpp"
#include "pref/learner.hpp"
#include "pref/oracle.hpp"
#include "sched/scheduler.hpp"

namespace pamo::core {

/// Robustness counters of one learning epoch (PamoScheduler::run). All
/// fields stay zero on a clean, untampered run with the watchdog off.
struct LearningHealth {
  /// Telemetry reports dropped outright plus GP training rows rejected as
  /// non-finite (per metric: a NaN in one field rejects one metric's row).
  std::size_t samples_rejected = 0;
  /// Phase-3 measurements whose non-finite fields were replaced by the
  /// outcome models' posterior means (used for utility, not fed back).
  std::size_t samples_repaired = 0;
  /// Training points whose noise the robust GP fit inflated.
  std::size_t outliers_downweighted = 0;
  /// Cholesky failures recovered by widening the jitter cap.
  std::size_t cholesky_recoveries = 0;
  /// Largest diagonal jitter any GP factorization needed.
  double max_jitter_applied = 0.0;
  /// BO iterations that failed and were absorbed by the watchdog budget.
  std::size_t iteration_failures = 0;
  /// 1 when the epoch watchdog stopped the BO loop early.
  std::size_t watchdog_fires = 0;
  /// Oracle comparisons flagged as contradictory and down-weighted.
  std::size_t inconsistent_pairs = 0;
  /// True when the BO loop produced no observation and the recommendation
  /// fell back to the zero-jitter heuristic on model point estimates.
  bool heuristic_fallback = false;
  /// True when Phase 1 reused a retained outcome-model bank.
  bool warm_started = false;
  /// Drift-detector (CUSUM) fires across the outcome GPs this epoch.
  std::size_t drift_fires = 0;
  /// Training rows down-weighted by drift forgetting this epoch.
  std::size_t drift_downweighted = 0;
};

struct PamoOptions {
  // Phase 1 (outcome models).
  std::size_t init_profiles = 64;        // U: initial profiling samples
  std::size_t max_model_points = 220;    // training-set cap for the GPs
  /// Warm start (continual learning): when set and fit, Phase 1 copies
  /// this retained outcome-model bank instead of profiling init_profiles
  /// fresh samples and re-running the MLE from scratch; only
  /// `warm_profiles` fresh profiles are taken and folded in through the
  /// incremental update path. The copied bank keeps its own GpOptions —
  /// including any drift-detector (CUSUM) state, so regime change across
  /// epochs triggers selective forgetting instead of a full refit.
  /// Because the bank pools all streams per metric, surviving streams
  /// reuse their posterior evidence and newcomers inherit the pooled
  /// prior mean automatically. Externally owned; null = cold start.
  const OutcomeModels* warm_start = nullptr;
  /// Fresh profiles taken when warm-starting (cheap re-anchoring).
  std::size_t warm_profiles = 12;
  gp::GpOptions gp = [] {
    gp::GpOptions g;
    g.mle_restarts = 2;
    g.mle_max_evals = 120;
    return g;
  }();

  // Phase 2 (preference model).
  std::size_t num_comparisons = 18;      // V: pre-loop comparison queries
  std::size_t pref_pool_size = 32;       // candidate outcome vectors
  pref::LearnerOptions pref_learner;
  /// PaMO+: bypass preference learning, use the true benefit function.
  bool use_true_preference = false;
  /// Ask one more comparison per BO iteration (line 19 of Algorithm 2).
  bool learn_in_loop = true;
  /// When set, skip Phase 2 and use (and extend) this externally owned
  /// preference model instead of training a fresh one. The system's
  /// pricing preference belongs to the *operator*, not to one scheduling
  /// epoch, so long-running deployments (core::SchedulingService) share
  /// one learner across re-optimizations.
  pref::PreferenceLearner* shared_learner = nullptr;

  // Phase 3 (BO loop).
  std::size_t init_observations = 6;
  std::size_t mc_samples = 40;           // S: MC scenarios per iteration
  std::size_t batch_size = 4;            // b: qNEI batch
  std::size_t max_iters = 10;            // MaxIterNum
  std::size_t max_pool_feasible = 144;   // feasible candidates kept per iter
  double delta = 0.02;                   // convergence threshold δ
  bo::AcquisitionOptions acquisition;
  bo::PoolOptions pool;

  /// Optional telemetry corruption injected into every profiler
  /// measurement (externally owned; survives across epochs so stuck-at
  /// memory and counters are continuous). When the model is enabled, the
  /// scheduler hardens itself automatically: the outcome GPs reject
  /// non-finite rows and down-weight outliers, and the preference model
  /// down-weights contradictory comparisons. Null or disabled leaves
  /// every code path bit-for-bit identical to the unhardened scheduler.
  eva::TelemetryCorruption* telemetry = nullptr;

  /// Epoch watchdog over the whole run (profiling + BO loop). Disabled by
  /// default; when enabled, failed BO iterations burn budget instead of
  /// throwing, and a breach returns best-so-far.
  bo::WatchdogOptions watchdog;

  std::uint64_t seed = 42;
};

struct PamoResult {
  bool feasible = false;
  eva::JointConfig best_config;
  sched::ScheduleResult best_schedule;
  std::size_t iterations = 0;
  std::size_t oracle_queries = 0;
  std::size_t profiles_taken = 0;
  /// Model-estimated benefit of the incumbent after each BO iteration.
  std::vector<double> benefit_trace;
  /// Robustness counters of this epoch (all-zero on a clean run).
  LearningHealth health;
};

class PamoScheduler {
 public:
  PamoScheduler(const eva::Workload& workload, PamoOptions options);

  /// Run all three phases against the decision-maker oracle.
  PamoResult run(pref::PreferenceOracle& oracle);

  [[nodiscard]] const OutcomeModels& outcome_models() const {
    return models_;
  }

  /// Auto-enable the robust GP / preference options when a telemetry
  /// corruption model is attached and enabled (no-op otherwise, keeping
  /// the clean path bit-for-bit unchanged). Public because anything that
  /// reconstructs a model bank the scheduler fit (e.g. the service's
  /// snapshot restore) must reproduce the same effective GpOptions.
  static PamoOptions harden(PamoOptions options);

 private:
  struct Observation {
    eva::JointConfig config;
    sched::ScheduleResult schedule;
    std::vector<double> unit;          // encoded decision vector
    eva::OutcomeVector raw{};          // aggregated noisy observation
    eva::OutcomeVector normalized{};   // ŷ
  };

  /// Draw a joint configuration whose Algorithm 1 schedule is feasible,
  /// biasing knobs downward on failures.
  std::optional<std::pair<eva::JointConfig, sched::ScheduleResult>>
  random_feasible(Rng& rng) const;

  /// Profile a configuration for real: noisy per-stream measurements plus
  /// jitter-free latency through the Algorithm 1 schedule.
  Observation observe(const eva::JointConfig& config,
                      sched::ScheduleResult schedule, Rng& rng);

  /// Model-predicted outcome vector of a scheduled candidate under one MC
  /// scenario (row `sample` of the grid tables).
  eva::OutcomeVector outcomes_from_tables(
      const std::vector<la::Matrix>& tables, std::size_t sample,
      const eva::JointConfig& config,
      const sched::ScheduleResult& schedule) const;

  /// outcomes_from_tables with the per-stream knob-grid rows resolved up
  /// front: grid_index() is a linear scan, so the Phase-3 scenario loop
  /// resolves each candidate once instead of once per MC sample.
  eva::OutcomeVector outcomes_from_rows(
      const std::vector<la::Matrix>& tables, std::size_t sample,
      const std::vector<std::size_t>& grid_rows,
      const eva::JointConfig& config,
      const sched::ScheduleResult& schedule) const;

  /// Utility of a normalized outcome vector under the current preference
  /// belief (learned model for PaMO, true benefit for PaMO+).
  double utility(const eva::OutcomeVector& normalized,
                 const pref::PreferenceOracle& oracle) const;

  /// A synthetic measurement from the outcome models' posterior means
  /// (the stand-in for a lost or unrepairable telemetry report).
  [[nodiscard]] eva::StreamMeasurement model_mean_measurement(
      const eva::StreamConfig& config) const;

  /// Degraded-mode recommendation when the BO loop produced no feasible
  /// observation: score random feasible candidates on the models' clean
  /// point estimates (zero-jitter schedules, no MC sampling) and return
  /// the best. Fills `result` and sets health.heuristic_fallback.
  void heuristic_fallback(PamoResult& result,
                          const pref::PreferenceOracle& oracle, Rng& rng);

  const eva::Workload& workload_;
  PamoOptions options_;
  eva::OutcomeNormalizer normalizer_;
  OutcomeModels models_;
  std::optional<pref::PreferenceLearner> learner_;  // owned (default mode)
  pref::PreferenceLearner* active_learner_ = nullptr;
  std::size_t model_points_ = 0;
  std::size_t profiles_taken_ = 0;
  LearningHealth health_;
};

}  // namespace pamo::core
