#include "core/evaluation.hpp"

#include "common/error.hpp"
#include "eva/profiler.hpp"
#include "sim/simulator.hpp"

namespace pamo::core {

std::optional<SolutionScore> evaluate_solution(
    const eva::Workload& workload, const eva::JointConfig& config,
    const sched::ScheduleResult& schedule,
    const eva::OutcomeNormalizer& normalizer,
    const pref::BenefitFunction& benefit) {
  if (!schedule.feasible) return std::nullopt;
  PAMO_CHECK(config.size() == workload.num_streams(),
             "config size does not match stream count");

  // Latency from the simulator: contention-free schedules reproduce Eq. 5;
  // Const2 violators pay their queueing delay here.
  const sim::SimReport report = sim::simulate(workload, schedule);

  std::vector<eva::StreamMeasurement> measurements;
  measurements.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    measurements.push_back(
        eva::Profiler::ground_truth(workload.clips[i], config[i]));
  }

  SolutionScore score;
  score.raw_outcomes =
      eva::aggregate_outcomes(measurements, report.latency_per_parent);
  score.normalized_outcomes = normalizer.normalize(score.raw_outcomes);
  score.benefit = benefit.value(score.normalized_outcomes);
  for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
    score.weighted_losses[k] =
        benefit.weights()[k] * score.normalized_outcomes[k];
  }
  return score;
}

double normalized_benefit(double u, double u_max,
                          const pref::BenefitFunction& benefit) {
  const double u_min = -0.5 * benefit.weight_sum();
  const double width = u_max - u_min;
  if (width <= 0) return 1.0;
  return (u - u_min) / width;
}

}  // namespace pamo::core
