// Canonical FNV-1a digests of the service's observable outputs — the
// repo-wide definition of "the same run".
//
// The determinism suite, the daemon's per-epoch trajectory log, and the
// kill-point restart matrix all compare runs through these digests:
// schedules, simulator reports, and full epoch reports (config, BO
// benefit trace, repairs, health) hash down to one 64-bit value each,
// with doubles hashed by bit pattern so a single ULP of drift is a
// mismatch. Keeping the definition in src/ (not test-local) is what lets
// a restarted daemon prove bit-identity against an uninterrupted run.
#pragma once

#include <cstdint>

#include "core/service.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace pamo::core {

/// Digest of a schedule's decision surface (assignment, phases, uplink
/// shares, per-parent latency bound, communication cost).
[[nodiscard]] std::uint64_t digest_schedule(
    const sched::ScheduleResult& schedule);

/// Digest of a validation simulation's full measured behaviour, including
/// the fault-aware accounting and end-of-horizon environment observables.
[[nodiscard]] std::uint64_t digest_sim(const sim::SimReport& report);

/// Digest of one epoch end to end: decision, measured behaviour, BO
/// benefit trajectory, oracle traffic, repairs, and absorbed errors.
[[nodiscard]] std::uint64_t digest_epoch(
    const SchedulingService::EpochReport& report);

}  // namespace pamo::core
