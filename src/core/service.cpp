#include "core/service.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "core/pareto.hpp"
#include "eva/faults.hpp"
#include "obs/obs.hpp"
#include "sched/bnb.hpp"

namespace pamo::core {

SchedulingService::SchedulingService(eva::Workload workload,
                                     ServiceOptions options)
    : workload_(std::move(workload)),
      options_(std::move(options)),
      governor_(options_.governor) {
  PAMO_CHECK(workload_.num_streams() > 0 && workload_.num_servers() > 0,
             "service requires a non-empty workload");
}

void SchedulingService::set_workload(eva::Workload workload) {
  PAMO_CHECK(workload.num_streams() > 0 && workload.num_servers() > 0,
             "service requires a non-empty workload");
  workload_ = std::move(workload);
}

void SchedulingService::set_fault_plan(sim::FaultPlan plan) {
  fault_plan_ = std::move(plan);
}

void SchedulingService::clear_fault_plan() { fault_plan_.reset(); }

void SchedulingService::set_churn_plan(eva::ChurnPlan plan) {
  churn_ = std::move(plan);
}

void SchedulingService::clear_churn_plan() { churn_ = eva::ChurnPlan(); }

void SchedulingService::set_telemetry_corruption(
    eva::TelemetryCorruptionOptions options) {
  telemetry_.emplace(options);
}

void SchedulingService::clear_telemetry_corruption() { telemetry_.reset(); }

void SchedulingService::ensure_learner(pref::PreferenceOracle& oracle) {
  if (learner_.has_value()) return;
  // Anchor the persistent preference model on normalized outcomes of
  // feasible configurations — the operator compares *presentable*
  // outcomes, so ground-truth samples of the initial workload are the
  // natural pool. Later epochs extend it with newly observed outcomes.
  const auto samples = sample_outcome_space(
      workload_, options_.pref_pool_size, options_.seed + 0xB00);
  PAMO_CHECK(samples.size() >= 2,
             "could not anchor the preference model: the workload admits "
             "almost no feasible configurations");
  std::vector<std::vector<double>> pool;
  pool.reserve(samples.size());
  for (const auto& s : samples) {
    pool.emplace_back(s.normalized.begin(), s.normalized.end());
  }
  learner_.emplace(std::move(pool), options_.initial.pref_learner,
                   options_.seed + 0xB01);
  learner_->run(oracle, options_.initial_comparisons);
}

bool SchedulingService::step_down(eva::StreamConfig& config,
                                  bool resolution_first) const {
  auto lower = [](const std::vector<std::uint32_t>& knobs,
                  std::uint32_t value) -> std::uint32_t {
    for (std::size_t k = knobs.size(); k-- > 1;) {
      if (knobs[k] == value) return knobs[k - 1];
    }
    return value;  // already at (or below) the smallest knob
  };
  const auto& space = workload_.space;
  const std::uint32_t res = lower(space.resolutions(), config.resolution);
  const std::uint32_t fps = lower(space.fps_knobs(), config.fps);
  if (resolution_first && res != config.resolution) {
    config.resolution = res;
    return true;
  }
  if (fps != config.fps) {
    config.fps = fps;
    return true;
  }
  if (res != config.resolution) {
    config.resolution = res;
    return true;
  }
  return false;
}

void SchedulingService::attempt_repair(EpochReport& report) {
  PAMO_SPAN("service.attempt_repair");
  PAMO_COUNT("service.repair_attempts", 1);
  const sim::SimReport& sim0 = report.sim;
  // Repair the decision against the workload the epoch actually scheduled
  // (the churn/governor view when one is active, the base otherwise).
  const eva::Workload& scheduled = active_workload();
  const std::size_t num_servers = scheduled.num_servers();
  if (sim0.server_up_at_end.size() != num_servers) return;
  const ResilienceOptions& policy = options_.resilience;

  // ---- Detect fault signatures from the epoch's measurements. ----
  std::vector<bool> usable(num_servers, true);
  std::vector<double> factors(num_servers, 1.0);
  double headroom = 1.0;
  bool any_dead = false;
  bool any_usable = false;
  bool degraded_net = false;
  for (std::size_t s = 0; s < num_servers; ++s) {
    if (!sim0.server_up_at_end[s] ||
        sim0.slowdown_at_end[s] >= policy.straggler_exclusion) {
      usable[s] = false;
      any_dead = true;
      continue;
    }
    any_usable = true;
    factors[s] = std::clamp(sim0.uplink_factor_at_end[s], 1e-6, 1.0);
    if (factors[s] < 1.0) degraded_net = true;
    headroom = std::max(headroom, sim0.slowdown_at_end[s]);
  }
  if (!any_usable) {
    // Every server is dead or excluded: nothing to re-pack onto. Leave the
    // epoch unrepaired (report.repaired stays false) so callers escalate.
    return;
  }
  bool orphaned = false;
  if (any_dead) {
    for (std::size_t server : report.schedule.assignment) {
      if (server < num_servers && !usable[server]) {
        orphaned = true;
        break;
      }
    }
  }
  const bool slo_breached =
      sim0.slo_violations > 0 || sim0.unserved_streams > 0;
  // headroom stays exactly 1.0 unless a slowdown observable moved it.
  if (!orphaned && !degraded_net && headroom == 1.0 &&  // pamo-lint: allow(float-eq)
      !slo_breached) {
    return;  // healthy epoch — nothing to repair
  }

  auto log = [&report](RepairKind kind, std::string detail) {
    report.repairs.push_back({kind, std::move(detail)});
  };

  // ---- The environment as it will look going forward: collapse folded
  // ---- into the uplinks, dead servers dead from t = 0, stragglers still
  // ---- slow, measured frame loss persisting.
  const eva::Workload view = eva::scale_uplinks(scheduled, factors);
  sim::FaultPlan residual;
  for (std::size_t s = 0; s < num_servers; ++s) {
    if (!usable[s]) residual.kill_server(s, 0.0);
    if (usable[s] && sim0.slowdown_at_end[s] > 1.0) {
      residual.slow_server(s, 0.0, sim0.slowdown_at_end[s]);
    }
  }
  if (sim0.dropped_by_loss > 0 && sim0.total_emitted > 0) {
    residual.drop_frames(static_cast<double>(sim0.dropped_by_loss) /
                             static_cast<double>(sim0.total_emitted),
                         options_.seed + 0xFA11 + epoch_);
  }
  sim::SimOptions validate = options_.sim;
  validate.faults = &residual;
  if (policy.slo_latency > 0.0) validate.slo_latency = policy.slo_latency;

  // ---- Step 1: repair placement with the zero-jitter heuristic (no BO
  // ---- re-run). Prefer the pinned fast path: survivors stay put.
  eva::JointConfig config = report.config;
  sched::ScheduleResult candidate;
  if (orphaned) {
    bool placement_decided = false;
    const ExactRepairOptions& exact = policy.exact_repair;
    if (exact.enabled) {
      std::size_t orphans = 0;
      for (std::size_t server : report.schedule.assignment) {
        if (server >= num_servers || !usable[server]) ++orphans;
      }
      if (orphans <= exact.max_orphans) {
        sched::BnbOptions bnb;
        bnb.max_nodes = exact.max_nodes;
        const sched::BnbResult optimal = sched::reschedule_bnb_pinned(
            view, config, report.schedule, usable, headroom, bnb);
        if (optimal.status == sched::BnbStatus::kOptimal ||
            optimal.status == sched::BnbStatus::kFeasibleBudget) {
          candidate = optimal.schedule;
          placement_decided = true;
          std::ostringstream detail;
          detail << "re-placed " << orphans
                 << " orphan(s) by branch-and-bound ("
                 << sched::bnb_status_name(optimal.status) << ", "
                 << optimal.nodes_expanded << " nodes)";
          log(RepairKind::kExactReplaceOrphans, detail.str());
        } else if (optimal.status == sched::BnbStatus::kInfeasible) {
          // Proven: no pinned repair exists at all, so skip the greedy
          // pinned attempt (it cannot succeed) and re-pack from scratch.
          candidate = sched::schedule_zero_jitter_masked(view, config, usable,
                                                         headroom);
          placement_decided = true;
          if (candidate.feasible) {
            log(RepairKind::kFullRepack,
                "pinned repair proven infeasible (branch-and-bound); "
                "Algorithm 1 re-run on survivors");
          }
        }
        // kUnknown: the node budget ran out before an answer. That proves
        // nothing, so fall through to the greedy pinned path unchanged.
      }
    }
    if (!placement_decided) {
      candidate =
          sched::reschedule_pinned(view, config, report.schedule, usable,
                                   headroom);
      if (candidate.feasible) {
        std::ostringstream detail;
        detail << "re-placed orphans of dead server(s) onto survivors "
                  "(pinned fast path)";
        log(RepairKind::kReplaceOrphans, detail.str());
      } else {
        candidate =
            sched::schedule_zero_jitter_masked(view, config, usable, headroom);
        if (candidate.feasible) {
          log(RepairKind::kFullRepack,
              "pinned repair infeasible; Algorithm 1 re-run on survivors");
        }
      }
    }
  } else {
    candidate =
        sched::schedule_zero_jitter_masked(view, config, usable, headroom);
    if (candidate.feasible) {
      log(RepairKind::kRephase,
          "re-solved placement/phasing on the degraded network view");
    }
  }

  // ---- Step 2: validate under the residual faults; degrade knobs until
  // ---- every surviving stream is served within the SLO (or the floor).
  for (std::size_t round = 0; round <= policy.max_degrade_rounds; ++round) {
    if (candidate.feasible) {
      const sim::SimReport post = sim::simulate(view, candidate, validate);
      if (post.unserved_streams == 0 && post.slo_violations == 0) {
        // Accounting contract: a successful repair leaves no orphan behind
        // silently — every sub-stream sits on a usable server, and the
        // action log records how the placement (or its knobs) changed.
        for (std::size_t server : candidate.assignment) {
          PAMO_ENSURES(server < usable.size() && usable[server],
                       "repaired schedule must not place streams on "
                       "unusable servers");
        }
        PAMO_ENSURES(!report.repairs.empty(),
                     "a successful repair must record its actions");
        report.repaired = true;
        report.repaired_config = std::move(config);
        report.repaired_schedule = std::move(candidate);
        report.post_repair_sim = post;
        return;
      }
      if (round == policy.max_degrade_rounds) break;
      // Blame the parents that missed the SLO or went unserved; if the
      // signal does not single anyone out, degrade everyone a step.
      std::vector<bool> blame(scheduled.num_streams(), false);
      bool any_blame = false;
      for (std::size_t i = 0; i < post.per_stream.size(); ++i) {
        const auto& stats = post.per_stream[i];
        if (stats.slo_violations > 0 ||
            (stats.emitted > 0 && stats.frames == 0)) {
          blame[candidate.streams[i].parent] = true;
          any_blame = true;
        }
      }
      bool stepped = false;
      for (std::size_t p = 0; p < config.size(); ++p) {
        if (any_blame && !blame[p]) continue;
        // Under a collapsed uplink shrink the frame first (fewer bits);
        // otherwise shed frame rate first (more period slack).
        stepped |= step_down(config[p], /*resolution_first=*/degraded_net);
      }
      if (!stepped) break;  // every blamed stream is at the knob floor
      std::ostringstream detail;
      detail << "round " << round + 1 << ": stepped down "
             << (degraded_net ? "resolution-first" : "fps-first")
             << " to recover the SLO";
      log(RepairKind::kKnobStepDown, detail.str());
    } else {
      if (round == policy.max_degrade_rounds) break;
      bool stepped = false;
      for (auto& stream_config : config) {
        stepped |= step_down(stream_config, /*resolution_first=*/false);
      }
      if (!stepped) break;
      std::ostringstream detail;
      detail << "round " << round + 1
             << ": no feasible packing on survivors; stepped all knobs down";
      log(RepairKind::kKnobStepDown, detail.str());
    }
    candidate =
        sched::schedule_zero_jitter_masked(view, config, usable, headroom);
  }
  // Repair failed: the report keeps the (faulted) measured behaviour and
  // the action log; report.repaired stays false so callers can escalate.
}

SchedulingService::EpochReport SchedulingService::run_epoch(
    pref::PreferenceOracle& oracle) {
  PAMO_SPAN("service.run_epoch");
  PAMO_COUNT("service.epochs", 1);
  EpochReport report;
  report.epoch = epoch_;
  const std::size_t queries_before = oracle.queries_answered();

  // ---- Materialize this epoch's workload: the churn overlay first, then
  // ---- governor admission. With both disabled the base workload is used
  // ---- untouched (epoch_workload_ stays empty — no copy, no new code
  // ---- path, bit-for-bit the churn-free service).
  epoch_workload_.reset();
  const bool churning = churn_.enabled();
  if (churning) {
    const eva::EpochChurn& step = churn_.churn_at(epoch_);
    report.churn.arrived = step.arrived.size();
    report.churn.departed = step.departed.size();
    report.churn.load_factor = step.load_factor;
    epoch_workload_ = churn_.offered_workload(workload_, epoch_);
  }
  report.churn.offered = active_workload().num_streams();
  if (churning || governor_.options().enabled) {
    GovernorPlan plan = governor_.plan_epoch(epoch_, active_workload());
    report.churn.admitted = plan.admitted_count;
    report.churn.deferred = plan.deferred;
    report.churn.shed = plan.shed;
    report.churn.offered_load = plan.offered_load;
    report.churn.admitted_load = plan.admitted_load;
    report.governor_actions = std::move(plan.actions);
    PAMO_COUNT("service.streams_shed", plan.shed);
    PAMO_COUNT("service.streams_deferred", plan.deferred);
    if (plan.admitted_count < report.churn.offered) {
      const eva::Workload& offered = active_workload();
      eva::Workload admitted;
      admitted.uplink_mbps = offered.uplink_mbps;
      admitted.space = offered.space;
      admitted.clips.reserve(plan.admitted.size());
      for (std::size_t i : plan.admitted) {
        admitted.clips.push_back(offered.clips[i]);
      }
      epoch_workload_ = std::move(admitted);
    }
  } else {
    report.churn.admitted = report.churn.offered;
  }
  const eva::Workload& active = active_workload();
  if (active.num_streams() == 0) {
    // The governor admitted nothing (extreme overload or a churn trough).
    // There is no decision to make: the epoch is infeasible by
    // construction and the next epoch re-plans.
    report.health.error_message = "no streams admitted this epoch";
    ++epoch_;
    PAMO_COUNT("service.infeasible_epochs", 1);
    return report;
  }

  // The optimization may die wholesale under corrupted telemetry (too few
  // finite profiles to fit any model at all). Absorb the error: the epoch
  // is then infeasible and flows into the last-known-good fallback below
  // — the service invariant is that no pamo::Error escapes run_epoch.
  PamoResult result;
  try {
    if (options_.fleet.enabled &&
        active.num_streams() >= options_.fleet.min_streams) {
      // Fleet-scale epoch: shard the workload and optimize per shard. The
      // per-shard seed space is re-derived from the epoch the same way the
      // flat path decorrelates epochs.
      FleetOptions fleet = options_.fleet;
      fleet.pamo.seed = options_.seed + 7919 * (epoch_ + 1);
      if (telemetry_.has_value()) fleet.pamo.telemetry = &*telemetry_;
      result = run_fleet_epoch(active, fleet, oracle);
    } else {
      PamoOptions options = epoch_ == 0 ? options_.initial : options_.steady;
      if (!options.use_true_preference) {
        ensure_learner(oracle);
        options.shared_learner = &*learner_;
      }
      // Decorrelate epochs while keeping the service deterministic.
      options.seed = options_.seed + 7919 * (epoch_ + 1);
      if (telemetry_.has_value()) options.telemetry = &*telemetry_;
      // Continual learning: steady-state epochs reuse the retained outcome
      // bank instead of re-profiling init_profiles samples and re-running
      // the hyperparameter MLE. The knobs-only GPs transfer across churn
      // (they never key on stream identity).
      if (options_.continual.warm_start && epoch_ > 0 &&
          retained_models_.has_value() && retained_models_->is_fit()) {
        options.warm_start = &*retained_models_;
        options.warm_profiles = options_.continual.warm_profiles;
      }

      PamoScheduler scheduler(active, options);
      result = scheduler.run(oracle);
      if (options_.retain_outcome_models &&
          scheduler.outcome_models().is_fit()) {
        // Copy (never move — the scheduler still owns its run) so the
        // fitted model bank rides along in snapshot(). No RNG is touched.
        retained_models_ = scheduler.outcome_models();
      }
    }
  } catch (const Error& e) {
    result.feasible = false;
    report.health.optimizer_error = true;
    report.health.error_message = e.what();
  }
  report.health.learning = result.health;
  report.benefit_trace = std::move(result.benefit_trace);
  // Long lineages: bound the shared preference pool (in-loop comparisons
  // grow it every epoch) before the next epoch extends it again.
  if (options_.continual.pref_pool_cap > 0 && learner_.has_value() &&
      learner_->pool().size() > options_.continual.pref_pool_cap) {
    const std::size_t dropped = learner_->compact_pool(
        options_.continual.pref_pool_cap, options_.pref_pool_size);
    PAMO_COUNT("service.pref_pool_dropped", dropped);
  }
  ++epoch_;
  report.oracle_queries = oracle.queries_answered() - queries_before;

  if (result.feasible) {
    report.feasible = true;
    report.config = result.best_config;
    report.schedule = result.best_schedule;
    last_good_ = LastGood{report.config, report.schedule};
  } else if (last_good_.has_value() &&
             last_good_->config.size() == active.num_streams()) {
    // An infeasible epoch must never leave callers running with nothing:
    // carry the last-known-good decision forward, re-scheduled against
    // the current workload when possible, verbatim otherwise. Under churn
    // the previous decision only transfers when the stream set has the
    // same cardinality (the size guard above) — otherwise the epoch stays
    // infeasible and the next one re-plans.
    sched::ScheduleResult rebuilt =
        sched::schedule_zero_jitter(active, last_good_->config);
    const bool previous_fits = std::all_of(
        last_good_->schedule.assignment.begin(),
        last_good_->schedule.assignment.end(),
        [&](std::size_t server) { return server < active.num_servers(); });
    if (rebuilt.feasible) {
      report.feasible = true;
      report.fallback = true;
      report.config = last_good_->config;
      report.schedule = std::move(rebuilt);
      report.repairs.push_back(
          {RepairKind::kFallbackSchedule,
           "epoch optimization infeasible; last-known-good configuration "
           "re-scheduled on the current workload"});
    } else if (previous_fits) {
      report.feasible = true;
      report.fallback = true;
      report.config = last_good_->config;
      report.schedule = last_good_->schedule;
      report.repairs.push_back(
          {RepairKind::kFallbackSchedule,
           "epoch optimization infeasible; previous epoch's schedule "
           "carried forward verbatim"});
    }
  }
  report.health.fallback_taken = report.fallback;
  PAMO_COUNT("service.fallbacks", report.fallback ? 1 : 0);
  PAMO_COUNT("service.infeasible_epochs", report.feasible ? 0 : 1);
  PAMO_ENSURES(epoch_ == report.epoch + 1, "run_epoch advances one epoch");
  if (!report.feasible) return report;
  PAMO_ENSURES(report.schedule.feasible &&
                   report.schedule.assignment.size() ==
                       report.schedule.streams.size(),
               "a feasible epoch carries a complete schedule");

  sim::SimOptions sim_options = options_.sim;
  if (fault_plan_.has_value()) sim_options.faults = &*fault_plan_;
  if (options_.resilience.slo_latency > 0.0) {
    sim_options.slo_latency = options_.resilience.slo_latency;
  }
  report.sim = sim::simulate(active, report.schedule, sim_options);

  if (options_.resilience.enabled) {
    try {
      attempt_repair(report);
    } catch (const Error& e) {
      // A failed repair must not take the epoch down with it: keep the
      // (faulted) measured report and record what broke.
      report.health.repair_error = true;
      report.health.error_message = e.what();
    }
    PAMO_COUNT("service.repairs_applied", report.repaired ? 1 : 0);
  }
  PAMO_GAUGE("service.epoch_benefit",
             report.benefit_trace.empty() ? 0.0 : report.benefit_trace.back());
  return report;
}

}  // namespace pamo::core
