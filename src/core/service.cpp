#include "core/service.hpp"

#include "common/error.hpp"
#include "core/pareto.hpp"

namespace pamo::core {

SchedulingService::SchedulingService(eva::Workload workload,
                                     ServiceOptions options)
    : workload_(std::move(workload)), options_(std::move(options)) {
  PAMO_CHECK(workload_.num_streams() > 0 && workload_.num_servers() > 0,
             "service requires a non-empty workload");
}

void SchedulingService::set_workload(eva::Workload workload) {
  PAMO_CHECK(workload.num_streams() > 0 && workload.num_servers() > 0,
             "service requires a non-empty workload");
  workload_ = std::move(workload);
}

void SchedulingService::ensure_learner(pref::PreferenceOracle& oracle) {
  if (learner_.has_value()) return;
  // Anchor the persistent preference model on normalized outcomes of
  // feasible configurations — the operator compares *presentable*
  // outcomes, so ground-truth samples of the initial workload are the
  // natural pool. Later epochs extend it with newly observed outcomes.
  const auto samples = sample_outcome_space(
      workload_, options_.pref_pool_size, options_.seed + 0xB00);
  PAMO_CHECK(samples.size() >= 2,
             "could not anchor the preference model: the workload admits "
             "almost no feasible configurations");
  std::vector<std::vector<double>> pool;
  pool.reserve(samples.size());
  for (const auto& s : samples) {
    pool.emplace_back(s.normalized.begin(), s.normalized.end());
  }
  learner_.emplace(std::move(pool), options_.initial.pref_learner,
                   options_.seed + 0xB01);
  learner_->run(oracle, options_.initial_comparisons);
}

SchedulingService::EpochReport SchedulingService::run_epoch(
    pref::PreferenceOracle& oracle) {
  EpochReport report;
  report.epoch = epoch_;
  const std::size_t queries_before = oracle.queries_answered();

  PamoOptions options = epoch_ == 0 ? options_.initial : options_.steady;
  if (!options.use_true_preference) {
    ensure_learner(oracle);
    options.shared_learner = &*learner_;
  }
  // Decorrelate epochs while keeping the service deterministic.
  options.seed = options_.seed + 7919 * (epoch_ + 1);

  PamoScheduler scheduler(workload_, options);
  const PamoResult result = scheduler.run(oracle);
  ++epoch_;
  report.oracle_queries = oracle.queries_answered() - queries_before;
  if (!result.feasible) return report;

  report.feasible = true;
  report.config = result.best_config;
  report.schedule = result.best_schedule;
  report.sim = sim::simulate(workload_, result.best_schedule);
  return report;
}

}  // namespace pamo::core
