#include "core/daemon.hpp"

#include <utility>

#include "ckpt/codec.hpp"
#include "ckpt/killpoint.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "core/report_digest.hpp"

namespace pamo::core {

namespace json = obs::json;
namespace codec = ckpt::codec;

namespace {
constexpr const char* kDaemonStateKind = "pamo.daemon_state.v1";
}  // namespace

Daemon::Daemon(eva::Workload workload, ServiceOptions service_options,
               DaemonOptions options)
    : service_(std::move(workload), std::move(service_options)),
      store_(options.checkpoint_dir),
      options_(std::move(options)) {}

std::optional<std::uint64_t> Daemon::resume() {
  auto loaded = store_.load_newest_valid();
  if (!loaded.has_value()) return std::nullopt;
  daemon_restore(loaded->payload);
  return loaded->sequence;
}

Daemon::EpochOutcome Daemon::step(pref::PreferenceOracle& oracle) {
  // Dying here loses nothing durable: everything since the last
  // checkpoint is exactly the window a restart replays.
  ckpt::kill_point("daemon.epoch.begin");

  EpochOutcome outcome;
  outcome.report = service_.run_epoch(oracle);
  ticks_ += options_.ticks_per_epoch;
  outcome.digest = digest_epoch(outcome.report);
  epoch_digests_.push_back(outcome.digest);
  for (const auto& repair : outcome.report.repairs) {
    repair_log_.push_back({outcome.report.epoch, repair.kind, repair.detail});
  }
  for (const auto& action : outcome.report.governor_actions) {
    governor_log_.push_back(action);
  }
  ++epochs_since_checkpoint_;

  // The epoch exists in memory only; dying here must replay it with a
  // bit-identical result from the previous checkpoint.
  ckpt::kill_point("daemon.epoch.pre_commit");

  const bool cadence_due = options_.checkpoint_every > 0 &&
                           epochs_since_checkpoint_ >= options_.checkpoint_every;
  const bool repair_due = options_.checkpoint_after_repair &&
                          (outcome.report.repaired || outcome.report.fallback);
  if (cadence_due || repair_due) {
    outcome.checkpoint_sequence = checkpoint_now();
  }

  // The checkpoint (when due) is durable; dying here must resume *past*
  // this epoch, not replay it.
  ckpt::kill_point("daemon.epoch.committed");
  PAMO_ENSURES(!outcome.checkpoint_sequence.has_value() ||
                   epochs_since_checkpoint_ == 0,
               "a committed checkpoint must reset the cadence counter");
  return outcome;
}

std::vector<Daemon::EpochOutcome> Daemon::run(pref::PreferenceOracle& oracle,
                                              std::size_t epochs) {
  std::vector<EpochOutcome> outcomes;
  outcomes.reserve(epochs);
  for (std::size_t i = 0; i < epochs; ++i) outcomes.push_back(step(oracle));
  return outcomes;
}

std::uint64_t Daemon::checkpoint_now() {
  const std::uint64_t sequence = store_.save(daemon_snapshot());
  if (options_.keep_checkpoints > 0) store_.prune(options_.keep_checkpoints);
  epochs_since_checkpoint_ = 0;
  return sequence;
}

json::Value Daemon::daemon_snapshot() const {
  json::Value state = json::Value::object();
  state.set("kind", json::Value(kDaemonStateKind));
  state.set("ticks", json::Value(ticks_));
  state.set("epoch_digests", codec::uints_to_json(epoch_digests_));
  json::Value repairs = json::Value::array();
  for (const auto& entry : repair_log_) {
    json::Value repair = json::Value::object();
    repair.set("epoch", json::Value(std::uint64_t{entry.epoch}));
    repair.set("kind",
               json::Value(std::uint64_t{static_cast<unsigned>(entry.kind)}));
    repair.set("detail", json::Value(entry.detail));
    repairs.push_back(std::move(repair));
  }
  state.set("repair_log", std::move(repairs));
  // Only present once the governor has acted: churn-free daemons keep
  // writing byte-identical (pre-governor) checkpoints.
  if (!governor_log_.empty()) {
    json::Value actions = json::Value::array();
    for (const auto& entry : governor_log_) {
      json::Value action = json::Value::object();
      action.set("epoch", json::Value(std::uint64_t{entry.epoch}));
      action.set("stream", json::Value(entry.stream));
      action.set("decision",
                 json::Value(std::uint64_t{
                     static_cast<unsigned>(entry.decision)}));
      action.set("detail", json::Value(entry.detail));
      actions.push_back(std::move(action));
    }
    state.set("governor_log", std::move(actions));
  }
  state.set("service", service_.snapshot());
  return state;
}

void Daemon::daemon_restore(const json::Value& state) {
  PAMO_CHECK(state.at("kind").as_string() == kDaemonStateKind,
             "unsupported daemon-state snapshot kind");
  ticks_ = state.at("ticks").as_uint();
  epoch_digests_ = codec::uints_from_json(state.at("epoch_digests"));
  repair_log_.clear();
  for (const auto& item : state.at("repair_log").items()) {
    RepairLogEntry entry;
    entry.epoch = static_cast<std::size_t>(item.at("epoch").as_uint());
    entry.kind = static_cast<RepairKind>(item.at("kind").as_uint());
    entry.detail = item.at("detail").as_string();
    repair_log_.push_back(std::move(entry));
  }
  governor_log_.clear();
  if (const json::Value* actions = state.find("governor_log")) {
    for (const auto& item : actions->items()) {
      GovernorAction entry;
      entry.epoch = static_cast<std::size_t>(item.at("epoch").as_uint());
      entry.stream = item.at("stream").as_uint();
      entry.decision =
          static_cast<GovernorDecision>(item.at("decision").as_uint());
      entry.detail = item.at("detail").as_string();
      governor_log_.push_back(std::move(entry));
    }
  }
  service_.restore(state.at("service"));
  epochs_since_checkpoint_ = 0;
}

}  // namespace pamo::core
