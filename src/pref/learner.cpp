#include "pref/learner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/normal.hpp"

namespace pamo::pref {

double expected_max_gaussian(double mean1, double mean2, double var1,
                             double var2, double cov) {
  const double theta2 = std::max(0.0, var1 + var2 - 2.0 * cov);
  if (theta2 < 1e-18) return std::max(mean1, mean2);
  const double theta = std::sqrt(theta2);
  const double d = (mean1 - mean2) / theta;
  return mean1 * normal_cdf(d) + mean2 * normal_cdf(-d) +
         theta * normal_pdf(d);
}

PreferenceLearner::PreferenceLearner(
    std::vector<std::vector<double>> candidate_outcomes, LearnerOptions options,
    std::uint64_t seed)
    : pool_(std::move(candidate_outcomes)),
      options_(options),
      model_(options.model),
      rng_(seed) {
  PAMO_CHECK(pool_.size() >= 2, "preference learning needs >= 2 candidates");
  refit();
}

void PreferenceLearner::refit() { model_.fit(pool_, pairs_); }

void PreferenceLearner::add_comparison(ComparisonPair pair) {
  PAMO_CHECK(pair.first < pool_.size() && pair.second < pool_.size(),
             "comparison index out of range");
  pairs_.push_back(pair);
  refit();
}

std::size_t PreferenceLearner::extend_pool(
    const std::vector<std::vector<double>>& outcomes) {
  const std::size_t first = pool_.size();
  pool_.insert(pool_.end(), outcomes.begin(), outcomes.end());
  refit();
  return first;
}

std::size_t PreferenceLearner::compact_pool(std::size_t max_points,
                                            std::size_t keep_anchor) {
  PAMO_CHECK(max_points >= 2 && keep_anchor <= max_points,
             "compact_pool needs keep_anchor <= max_points and >= 2 kept");
  if (pool_.size() <= max_points) return 0;
  keep_anchor = std::min(keep_anchor, pool_.size());
  // Survivors: the anchor prefix plus the newest extensions; the dropped
  // middle is the oldest BO-loop history, whose evidence the model keeps
  // only through comparisons that never referenced it.
  const std::size_t keep_recent = max_points - keep_anchor;
  const std::size_t drop_begin = keep_anchor;
  const std::size_t drop_end = pool_.size() - keep_recent;
  std::vector<std::size_t> remap(pool_.size(), SIZE_MAX);
  std::vector<std::vector<double>> kept;
  kept.reserve(max_points);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (i >= drop_begin && i < drop_end) continue;
    remap[i] = kept.size();
    kept.push_back(std::move(pool_[i]));
  }
  const std::size_t dropped = pool_.size() - kept.size();
  pool_ = std::move(kept);
  std::vector<ComparisonPair> surviving;
  surviving.reserve(pairs_.size());
  for (const auto& [winner, loser] : pairs_) {
    if (remap[winner] == SIZE_MAX || remap[loser] == SIZE_MAX) continue;
    surviving.push_back({remap[winner], remap[loser]});
  }
  pairs_ = std::move(surviving);
  refit();
  return dropped;
}

void PreferenceLearner::run(PreferenceOracle& oracle,
                            std::size_t num_comparisons) {
  for (std::size_t round = 0; round < num_comparisons; ++round) {
    std::size_t best_a = 0;
    std::size_t best_b = 1;
    const bool explore =
        options_.explore_every > 0 &&
        (pairs_.size() % options_.explore_every) == options_.explore_every - 1;
    if (!options_.use_eubo || pairs_.empty() || explore) {
      // Random pair (also the cold-start round: the prior posterior is
      // exchangeable, so EUBO cannot distinguish pairs yet).
      best_a = rng_.uniform_index(pool_.size());
      do {
        best_b = rng_.uniform_index(pool_.size());
      } while (best_b == best_a);
    } else {
      // One joint posterior over the pool, then closed-form EUBO per pair.
      // Already-asked pairs are excluded: EUBO concentrates on the current
      // top pair otherwise and wastes decision-maker queries.
      auto already_asked = [&](std::size_t a, std::size_t b) {
        for (const auto& [w, l] : pairs_) {
          if ((w == a && l == b) || (w == b && l == a)) return true;
        }
        return false;
      };
      const gp::Posterior post = model_.posterior(pool_);
      double best_score = -1e300;
      bool found = false;
      for (std::size_t trial = 0; trial < options_.pairs_per_round; ++trial) {
        const std::size_t a = rng_.uniform_index(pool_.size());
        std::size_t b = rng_.uniform_index(pool_.size());
        if (a == b || already_asked(a, b)) continue;
        const double score = expected_max_gaussian(
            post.mean[a], post.mean[b], post.covariance(a, a),
            post.covariance(b, b), post.covariance(a, b));
        if (score > best_score) {
          best_score = score;
          best_a = a;
          best_b = b;
          found = true;
        }
      }
      if (!found) {
        best_a = rng_.uniform_index(pool_.size());
        do {
          best_b = rng_.uniform_index(pool_.size());
        } while (best_b == best_a);
      }
    }
    const bool a_wins = oracle.prefers(pool_[best_a], pool_[best_b]);
    pairs_.push_back(a_wins ? ComparisonPair{best_a, best_b}
                            : ComparisonPair{best_b, best_a});
    refit();
  }
}

}  // namespace pamo::pref
