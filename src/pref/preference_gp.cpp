#include "pref/preference_gp.hpp"

#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/normal.hpp"

namespace pamo::pref {

namespace {
constexpr double kSqrt2 = 1.41421356237309504880;
constexpr double kKernelJitter = 1e-8;
}  // namespace

PreferenceGp::PreferenceGp(PreferenceGpOptions options)
    : options_(options) {
  PAMO_CHECK(options_.lambda > 0, "probit noise lambda must be positive");
  PAMO_CHECK(options_.lengthscale > 0, "lengthscale must be positive");
}

void PreferenceGp::fit(std::vector<std::vector<double>> points,
                       std::vector<ComparisonPair> pairs) {
  PAMO_CHECK(!points.empty(), "PreferenceGp requires at least one point");
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    PAMO_CHECK(p.size() == dim, "ragged outcome-vector set");
  }
  for (const auto& [winner, loser] : pairs) {
    PAMO_CHECK(winner < points.size() && loser < points.size(),
               "comparison index out of range");
    PAMO_CHECK(winner != loser, "self-comparison");
  }
  points_ = std::move(points);
  pairs_ = std::move(pairs);

  params_.log_lengthscales.assign(dim, std::log(options_.lengthscale));
  params_.log_signal_var = std::log(options_.signal_var);
  params_.log_noise_var = std::log(kKernelJitter);

  g_map_.assign(points_.size(), 0.0);
  laplace();
}

void PreferenceGp::update(const std::vector<std::vector<double>>& points,
                          const std::vector<ComparisonPair>& pairs) {
  PAMO_CHECK(is_fit(), "update before fit");
  const std::size_t dim = points_.front().size();
  for (const auto& p : points) {
    PAMO_CHECK(p.size() == dim, "outcome-vector dimension mismatch");
    points_.push_back(p);
  }
  for (const auto& [winner, loser] : pairs) {
    PAMO_CHECK(winner < points_.size() && loser < points_.size(),
               "comparison index out of range");
    pairs_.push_back({winner, loser});
  }
  g_map_.resize(points_.size(), 0.0);  // warm start; new latents at 0
  laplace();
}

void PreferenceGp::compute_pair_weights() {
  const std::size_t n = points_.size();
  const double inv_noise = 1.0 / (kSqrt2 * options_.lambda);
  pair_inv_noise_.assign(pairs_.size(), inv_noise);
  num_inconsistent_ = 0;
  if (!options_.downweight_inconsistent || pairs_.empty()) return;

  // Directed comparison graph: edge w→l for every asserted w ≻ l.
  std::vector<std::uint8_t> edge(n * n, 0);
  for (const auto& [winner, loser] : pairs_) edge[winner * n + loser] = 1;
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const auto [winner, loser] = pairs_[p];
    // Direct contradiction (l ≻ w also asserted) or an intransitive
    // triple l ≻ c ≻ w that implies the opposite ordering.
    bool inconsistent = edge[loser * n + winner] != 0;
    for (std::size_t c = 0; !inconsistent && c < n; ++c) {
      inconsistent = edge[loser * n + c] != 0 && edge[c * n + winner] != 0;
    }
    if (inconsistent) {
      pair_inv_noise_[p] = inv_noise / options_.inconsistency_penalty;
      ++num_inconsistent_;
    }
  }
}

void PreferenceGp::laplace() {
  const std::size_t n = points_.size();
  compute_pair_weights();

  la::Matrix k = gp::kernel_matrix(options_.kernel, params_, points_);
  k.add_diagonal(kKernelJitter);
  k_chol_.emplace(k);

  // Negative log posterior (up to constants): ψ(g) = -Σ logΦ(z_v) + ½gᵀK⁻¹g.
  auto psi = [&](const la::Vector& g) {
    double nll = 0.0;
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      const auto [winner, loser] = pairs_[p];
      const double z = (g[winner] - g[loser]) * pair_inv_noise_[p];
      nll -= log_normal_cdf(z);
    }
    const la::Vector kinv_g = k_chol_->solve(g);
    return nll + 0.5 * la::dot(g, kinv_g);
  };

  double current_psi = psi(g_map_);
  for (std::size_t iter = 0; iter < options_.max_newton_iters; ++iter) {
    // Gradient of the log likelihood (b) and its negative Hessian (W).
    la::Vector b(n, 0.0);
    w_ = la::Matrix(n, n, 0.0);
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      const auto [winner, loser] = pairs_[p];
      const double inv_noise = pair_inv_noise_[p];
      const double z = (g_map_[winner] - g_map_[loser]) * inv_noise;
      const double h = normal_hazard(z);
      const double grad = h * inv_noise;
      b[winner] += grad;
      b[loser] -= grad;
      const double kappa = h * (z + h) * inv_noise * inv_noise;
      w_(winner, winner) += kappa;
      w_(loser, loser) += kappa;
      w_(winner, loser) -= kappa;
      w_(loser, winner) -= kappa;
    }

    // Newton target: (K⁻¹ + W) g⁺ = W g + b.
    la::Matrix a = w_;
    {
      // A += K⁻¹ by solving K X = I column-wise.
      const la::Matrix kinv = k_chol_->solve(la::Matrix::identity(n));
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a(r, c) += kinv(r, c);
      }
    }
    la::Vector rhs = la::matvec(w_, g_map_);
    la::axpy(1.0, b, rhs);
    const la::Cholesky a_chol(a, /*max_jitter=*/1e-6);
    la::Vector g_new = a_chol.solve(rhs);

    // Damped step (ψ is convex; damping only guards numerics).
    la::Vector direction(n);
    for (std::size_t i = 0; i < n; ++i) direction[i] = g_new[i] - g_map_[i];
    double step = 1.0;
    double next_psi = 0.0;
    la::Vector candidate(n);
    for (int halvings = 0; halvings < 20; ++halvings) {
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = g_map_[i] + step * direction[i];
      }
      next_psi = psi(candidate);
      if (next_psi <= current_psi + 1e-12) break;
      step *= 0.5;
    }
    const double improvement = current_psi - next_psi;
    g_map_ = candidate;
    current_psi = next_psi;
    if (improvement < options_.newton_tol && iter > 0) break;
  }

  // Final Hessian at the MAP (for the predictive covariance).
  w_ = la::Matrix(n, n, 0.0);
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const auto [winner, loser] = pairs_[p];
    const double inv_noise = pair_inv_noise_[p];
    const double z = (g_map_[winner] - g_map_[loser]) * inv_noise;
    const double h = normal_hazard(z);
    const double kappa = h * (z + h) * inv_noise * inv_noise;
    w_(winner, winner) += kappa;
    w_(loser, loser) += kappa;
    w_(winner, loser) -= kappa;
    w_(loser, winner) -= kappa;
  }
  la::Matrix b_mat = w_;
  const la::Matrix kinv = k_chol_->solve(la::Matrix::identity(n));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b_mat(r, c) += kinv(r, c);
  }
  b_chol_.emplace(b_mat, /*max_jitter=*/1e-6);
  kinv_g_ = k_chol_->solve(g_map_);
}

gp::Posterior PreferenceGp::posterior(
    const std::vector<std::vector<double>>& y) const {
  PAMO_CHECK(is_fit(), "posterior before fit");
  const std::size_t m = y.size();
  PAMO_CHECK(m > 0, "posterior over an empty set");
  for (const auto& p : y) {
    PAMO_CHECK(p.size() == points_.front().size(),
               "outcome-vector dimension mismatch");
  }
  const la::Matrix k_cross =
      gp::kernel_cross(options_.kernel, params_, y, points_);  // m × n
  const la::Matrix k_test = gp::kernel_matrix(options_.kernel, params_, y);

  gp::Posterior post;
  post.mean.resize(m);
  const std::size_t n = points_.size();
  // U = K⁻¹ K*ᵀ, column c = K⁻¹ k*(y_c).
  la::Matrix u(n, m);
  la::Vector col(n);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = k_cross(c, r);
    const la::Vector sol = k_chol_->solve(col);
    for (std::size_t r = 0; r < n; ++r) u(r, c) = sol[r];
    post.mean[c] = la::dot(col, kinv_g_);
  }
  // V = B⁻¹ U with B = K⁻¹ + W.
  la::Matrix v(n, m);
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = u(r, c);
    const la::Vector sol = b_chol_->solve(col);
    for (std::size_t r = 0; r < n; ++r) v(r, c) = sol[r];
  }
  // cov = K** − K* K⁻¹ K*ᵀ + Uᵀ B⁻¹ U.
  post.covariance = la::Matrix(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      double explained = 0.0;
      double recovered = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        explained += k_cross(i, r) * u(r, j);
        recovered += u(r, i) * v(r, j);
      }
      const double value = k_test(i, j) - explained + recovered;
      post.covariance(i, j) = value;
      post.covariance(j, i) = value;
    }
  }
  return post;
}

double PreferenceGp::utility_mean(const std::vector<double>& y) const {
  PAMO_CHECK(is_fit(), "utility_mean before fit");
  la::Vector kstar(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    kstar[i] = gp::kernel_value(options_.kernel, params_, y, points_[i]);
  }
  return la::dot(kstar, kinv_g_);
}

la::Matrix PreferenceGp::sample_joint(const std::vector<std::vector<double>>& y,
                                      std::size_t num_samples,
                                      Rng& rng) const {
  const gp::Posterior post = posterior(y);
  const std::size_t m = y.size();
  const la::Cholesky chol(post.covariance, /*max_jitter=*/1e-2);
  la::Matrix samples(num_samples, m);
  la::Vector z(m);
  for (std::size_t s = 0; s < num_samples; ++s) {
    for (auto& zi : z) zi = rng.normal();
    for (std::size_t i = 0; i < m; ++i) {
      double sum = post.mean[i];
      for (std::size_t j = 0; j <= i; ++j) sum += chol.lower()(i, j) * z[j];
      samples(s, i) = sum;
    }
  }
  return samples;
}

}  // namespace pamo::pref
