// Gaussian-process preference learning from pairwise comparisons
// (Chu & Ghahramani, ICML 2005 — reference [6] of the paper, §4.2).
//
// The latent utility g over outcome vectors has a GP prior; each observed
// comparison y⁽¹⁾ ≻ y⁽²⁾ contributes a probit likelihood
// Φ((g(y⁽¹⁾) − g(y⁽²⁾)) / (√2 λ)) (Eq. 9). The posterior over g at the
// training points is approximated with a Laplace approximation (Newton
// iterations for the MAP, Hessian as posterior precision); prediction at
// new outcome vectors follows the standard Laplace-GP formulas. The model
// outputs *relative* utilities — only orderings are identified, which is
// all the scheduler needs (§5.3).
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "la/cholesky.hpp"
#include "obs/json.hpp"

namespace pamo::pref {

/// A comparison: items.first ≻ items.second (indices into the point set).
using ComparisonPair = std::pair<std::size_t, std::size_t>;

struct PreferenceGpOptions {
  gp::KernelType kernel = gp::KernelType::kRbf;
  /// Kernel lengthscale in the (normalized, [0,1]^k) outcome space.
  double lengthscale = 1.2;
  double signal_var = 1.0;
  /// Comparison noise λ of the probit likelihood (Eq. 9).
  double lambda = 0.10;
  std::size_t max_newton_iters = 60;
  double newton_tol = 1e-9;
  /// Tolerate inconsistent oracle answers: a comparison contradicted by
  /// another pair (directly, or through an intransitive chain w ≻ l while
  /// l ≻ c ≻ w) gets its effective λ inflated by `inconsistency_penalty`
  /// instead of corrupting the MAP fit at full weight. Off by default —
  /// every pair then carries identical weight (bit-for-bit unchanged).
  bool downweight_inconsistent = false;
  /// λ multiplier for flagged pairs (>1 softens their likelihood).
  double inconsistency_penalty = 4.0;
};

class PreferenceGp {
 public:
  explicit PreferenceGp(PreferenceGpOptions options = {});

  /// Fit to `points` (outcome vectors) with comparisons `pairs`, each
  /// asserting points[first] ≻ points[second]. Replaces previous data.
  void fit(std::vector<std::vector<double>> points,
           std::vector<ComparisonPair> pairs);

  /// Add new points/pairs (pair indices refer to the *combined* point set)
  /// and re-run the Laplace approximation from a warm start.
  void update(const std::vector<std::vector<double>>& points,
              const std::vector<ComparisonPair>& pairs);

  [[nodiscard]] bool is_fit() const { return !points_.empty(); }
  [[nodiscard]] std::size_t num_points() const { return points_.size(); }
  [[nodiscard]] std::size_t num_pairs() const { return pairs_.size(); }
  /// Comparisons flagged as contradictory in the latest fit (0 unless
  /// downweight_inconsistent is on).
  [[nodiscard]] std::size_t num_inconsistent_pairs() const {
    return num_inconsistent_;
  }

  /// Posterior mean/covariance of the latent utility at `y`.
  [[nodiscard]] gp::Posterior posterior(
      const std::vector<std::vector<double>>& y) const;

  /// Posterior mean utility of a single outcome vector.
  [[nodiscard]] double utility_mean(const std::vector<double>& y) const;

  /// Joint posterior samples of the utility at `y` (num_samples × |y|).
  [[nodiscard]] la::Matrix sample_joint(
      const std::vector<std::vector<double>>& y, std::size_t num_samples,
      Rng& rng) const;

  /// MAP latent utilities at the training points.
  [[nodiscard]] const la::Vector& map_utilities() const { return g_map_; }

  /// Serialize the full posterior state (points, pairs, pair weights, the
  /// MAP solution, both Cholesky factors) as deterministic JSON. Restoring
  /// skips the Laplace iteration entirely — the exact factors come back,
  /// so posterior()/sample_joint() are bit-identical after the round-trip.
  [[nodiscard]] obs::json::Value snapshot() const;

  /// Rebuild from snapshot(). Must be constructed with the same
  /// PreferenceGpOptions as the snapshotted instance.
  void restore(const obs::json::Value& snap);

 private:
  void laplace();
  /// Per-pair probit precision 1/(√2·λ_p); flags contradicted pairs and
  /// softens their λ when downweight_inconsistent is on.
  void compute_pair_weights();

  // Construction-time configuration, re-supplied by the ctor on restore.
  // pamo-analyze: allow(snapshot-coverage)
  PreferenceGpOptions options_;
  gp::KernelParams params_;

  std::vector<std::vector<double>> points_;
  std::vector<ComparisonPair> pairs_;
  std::vector<double> pair_inv_noise_;
  std::size_t num_inconsistent_ = 0;

  la::Vector g_map_;          // MAP latent utilities
  la::Matrix w_;              // negative log-likelihood Hessian at the MAP
  std::optional<la::Cholesky> k_chol_;   // chol(K + εI)
  std::optional<la::Cholesky> b_chol_;   // chol(K⁻¹ + W)
  la::Vector kinv_g_;         // K⁻¹ g_map (predictive-mean weights)
};

}  // namespace pamo::pref
