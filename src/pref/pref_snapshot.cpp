// Preference-stack checkpoint serialization (PreferenceGp +
// PreferenceLearner; see the headers).
//
// Both restores are exact-state transplants, not refits: the Laplace
// iteration is warm-start path-dependent (its Newton trajectory depends on
// the g_map it starts from), so re-running it on restore could land on a
// bitwise-different MAP. Carrying g_map, W, both Cholesky factors, and the
// per-pair weights across makes the restored posterior — and every EUBO
// score computed from it — identical to the uninterrupted instance's.
#include <utility>

#include "ckpt/codec.hpp"
#include "common/error.hpp"
#include "pref/learner.hpp"
#include "pref/preference_gp.hpp"

namespace pamo::pref {

namespace json = obs::json;
namespace codec = ckpt::codec;

namespace {

json::Value pairs_to_json(const std::vector<ComparisonPair>& pairs) {
  json::Value arr = json::Value::array();
  for (const auto& [winner, loser] : pairs) {
    json::Value pair = json::Value::array();
    pair.push_back(json::Value(static_cast<std::uint64_t>(winner)));
    pair.push_back(json::Value(static_cast<std::uint64_t>(loser)));
    arr.push_back(std::move(pair));
  }
  return arr;
}

std::vector<ComparisonPair> pairs_from_json(const json::Value& v) {
  std::vector<ComparisonPair> out;
  out.reserve(v.items().size());
  for (const auto& item : v.items()) {
    PAMO_CHECK(item.items().size() == 2,
               "comparison pair snapshot must have two indices");
    out.emplace_back(static_cast<std::size_t>(item.items()[0].as_uint()),
                     static_cast<std::size_t>(item.items()[1].as_uint()));
  }
  return out;
}

}  // namespace

// pamo-analyze: snapshot(PreferenceGp)
json::Value PreferenceGp::snapshot() const {
  json::Value obj = json::Value::object();
  json::Value params = json::Value::object();
  params.set("log_lengthscales",
             codec::doubles_to_json(params_.log_lengthscales));
  params.set("log_signal_var", json::Value(params_.log_signal_var));
  params.set("log_noise_var", json::Value(params_.log_noise_var));
  obj.set("params", std::move(params));
  obj.set("points", codec::rows_to_json(points_));
  obj.set("pairs", pairs_to_json(pairs_));
  obj.set("pair_inv_noise", codec::doubles_to_json(pair_inv_noise_));
  obj.set("num_inconsistent",
          json::Value(static_cast<std::uint64_t>(num_inconsistent_)));
  obj.set("g_map", codec::doubles_to_json(g_map_));
  obj.set("w", codec::matrix_to_json(w_));
  obj.set("k_chol", codec::cholesky_to_json(k_chol_));
  obj.set("b_chol", codec::cholesky_to_json(b_chol_));
  obj.set("kinv_g", codec::doubles_to_json(kinv_g_));
  return obj;
}

// pamo-analyze: snapshot(PreferenceGp)
void PreferenceGp::restore(const json::Value& snap) {
  const json::Value& params = snap.at("params");
  params_.log_lengthscales =
      codec::doubles_from_json(params.at("log_lengthscales"));
  params_.log_signal_var = params.at("log_signal_var").as_double();
  params_.log_noise_var = params.at("log_noise_var").as_double();
  points_ = codec::rows_from_json(snap.at("points"));
  pairs_ = pairs_from_json(snap.at("pairs"));
  pair_inv_noise_ = codec::doubles_from_json(snap.at("pair_inv_noise"));
  num_inconsistent_ =
      static_cast<std::size_t>(snap.at("num_inconsistent").as_uint());
  g_map_ = codec::doubles_from_json(snap.at("g_map"));
  w_ = codec::matrix_from_json(snap.at("w"));
  k_chol_ = codec::cholesky_from_json(snap.at("k_chol"));
  b_chol_ = codec::cholesky_from_json(snap.at("b_chol"));
  kinv_g_ = codec::doubles_from_json(snap.at("kinv_g"));
  PAMO_CHECK(g_map_.size() == points_.size(),
             "preference snapshot is internally inconsistent");
  PAMO_CHECK(!is_fit() || (k_chol_.has_value() && b_chol_.has_value()),
             "fitted preference snapshot must carry both factors");
}

// pamo-analyze: snapshot(PreferenceLearner)
json::Value PreferenceLearner::snapshot() const {
  json::Value obj = json::Value::object();
  obj.set("pool", codec::rows_to_json(pool_));
  obj.set("pairs", pairs_to_json(pairs_));
  obj.set("rng", codec::rng_to_json(rng_));
  obj.set("model", model_.snapshot());
  return obj;
}

// pamo-analyze: snapshot(PreferenceLearner)
void PreferenceLearner::restore(const json::Value& snap) {
  pool_ = codec::rows_from_json(snap.at("pool"));
  PAMO_CHECK(pool_.size() >= 2, "learner snapshot needs >= 2 candidates");
  pairs_ = pairs_from_json(snap.at("pairs"));
  for (const auto& [winner, loser] : pairs_) {
    PAMO_CHECK(winner < pool_.size() && loser < pool_.size(),
               "learner snapshot pair index out of range");
  }
  rng_ = codec::rng_from_json(snap.at("rng"));
  model_.restore(snap.at("model"));
}

}  // namespace pamo::pref
