#include "pref/oracle.hpp"

#include "common/error.hpp"

namespace pamo::pref {

BenefitFunction::BenefitFunction(
    std::array<double, eva::kNumObjectives> weights)
    : weights_(weights) {
  for (double w : weights_) {
    PAMO_CHECK(w >= 0.0, "benefit weights must be non-negative");
  }
}

BenefitFunction BenefitFunction::uniform() {
  return BenefitFunction({1.0, 1.0, 1.0, 1.0, 1.0});
}

double BenefitFunction::value(const eva::OutcomeVector& normalized) const {
  double u = 0.0;
  for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
    u -= weights_[k] * normalized[k];
  }
  return u;
}

double BenefitFunction::value(const std::vector<double>& normalized) const {
  PAMO_CHECK(normalized.size() == eva::kNumObjectives,
             "outcome vector must have k=5 entries");
  double u = 0.0;
  for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
    u -= weights_[k] * normalized[k];
  }
  return u;
}

double BenefitFunction::weight_sum() const {
  double sum = 0.0;
  for (double w : weights_) sum += w;
  return sum;
}

PreferenceOracle::PreferenceOracle(BenefitFunction benefit,
                                   OracleOptions options, std::uint64_t seed)
    : benefit_(std::move(benefit)), options_(options), rng_(seed) {}

bool PreferenceOracle::prefers(const std::vector<double>& y1,
                               const std::vector<double>& y2) {
  ++queries_;
  double diff = benefit_.value(y1) - benefit_.value(y2);
  if (options_.response_noise > 0.0) {
    diff += rng_.normal(0.0, options_.response_noise);
  }
  return diff > 0.0;
}

}  // namespace pamo::pref
