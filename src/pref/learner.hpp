// Comparison-based preference learning (§4.2) with EUBO pair selection.
//
// Each round, the learner scores candidate comparison pairs with the
// Expected Utility of the Best Option (EUBO, Lin et al. 2022 — Eq. 11),
// asks the decision-maker the winning question, and refits the preference
// GP with the answer. EUBO has a closed form under the joint Gaussian
// posterior: E[max(g₁, g₂)] = μ₁Φ(d) + μ₂Φ(−d) + θ φ(d) with
// θ² = Var[g₁ − g₂], d = (μ₁ − μ₂)/θ.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/json.hpp"
#include "pref/oracle.hpp"
#include "pref/preference_gp.hpp"

namespace pamo::pref {

/// Closed-form E[max(g1, g2)] for a bivariate Gaussian.
double expected_max_gaussian(double mean1, double mean2, double var1,
                             double var2, double cov);

struct LearnerOptions {
  PreferenceGpOptions model;
  /// Number of random candidate pairs scored per round.
  std::size_t pairs_per_round = 200;
  /// One round in `explore_every` is a uniformly random pair instead of
  /// the EUBO argmax. EUBO concentrates queries around the incumbent best
  /// option; a little forced exploration keeps the *global* ordering
  /// calibrated (what Figure 9 measures) at negligible cost to best-option
  /// identification.
  std::size_t explore_every = 3;
  /// When false, pick comparison pairs uniformly at random (the ablation
  /// contrast for Figure 9's EUBO-vs-random series).
  bool use_eubo = true;
};

/// Drives rounds of (select pair → query oracle → refit model) over a
/// fixed pool of candidate outcome vectors.
class PreferenceLearner {
 public:
  PreferenceLearner(std::vector<std::vector<double>> candidate_outcomes,
                    LearnerOptions options, std::uint64_t seed);

  /// Run `num_comparisons` query rounds against the oracle.
  void run(PreferenceOracle& oracle, std::size_t num_comparisons);

  /// Add one externally obtained comparison (indices into the pool).
  void add_comparison(ComparisonPair pair);

  /// Append candidate outcome vectors (e.g. newly observed outcomes from
  /// the BO loop); returns the index of the first appended point.
  std::size_t extend_pool(const std::vector<std::vector<double>>& outcomes);

  /// Bound the pool for long-running (churned) lineages: keep the first
  /// `keep_anchor` points (the anchor pool the operator's interview was
  /// run over) and the most recent extensions up to `max_points` total,
  /// dropping the *oldest* extensions in between. Comparisons touching a
  /// dropped point are discarded; survivors are re-indexed and the model
  /// refit. No-op (and no refit) when the pool already fits. Returns the
  /// number of pool points dropped.
  std::size_t compact_pool(std::size_t max_points, std::size_t keep_anchor);

  /// Serialize the learner's persistent state: the candidate pool, every
  /// comparison asked so far, the pair-selection RNG mid-stream, and the
  /// fitted preference model.
  [[nodiscard]] obs::json::Value snapshot() const;

  /// Rebuild from snapshot(), replacing pool, pairs, RNG, and model. The
  /// learner must have been constructed with the same LearnerOptions; the
  /// construction-time pool and seed are overwritten. After restore, the
  /// next run() asks bit-identical queries to the original instance.
  void restore(const obs::json::Value& snap);

  [[nodiscard]] const PreferenceGp& model() const { return model_; }
  [[nodiscard]] const std::vector<std::vector<double>>& pool() const {
    return pool_;
  }
  [[nodiscard]] std::size_t num_comparisons() const { return pairs_.size(); }

 private:
  void refit();

  std::vector<std::vector<double>> pool_;
  std::vector<ComparisonPair> pairs_;
  // Construction-time configuration, re-supplied by the ctor on restore.
  // pamo-analyze: allow(snapshot-coverage)
  LearnerOptions options_;
  PreferenceGp model_;
  Rng rng_;
};

}  // namespace pamo::pref
