// The decision-maker stand-in.
//
// In the paper, a human (or the pricing system) answers "which of these
// two outcome vectors is better?". In the evaluation, the ground-truth
// benefit function of Eq. 13 plays that role — the same substitution the
// paper's own experiments make. The oracle optionally answers with probit
// response noise to model an inconsistent decision-maker.
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "eva/types.hpp"

namespace pamo::pref {

/// Ground-truth system benefit U = −Σ w_i ŷ_i over *normalized* outcomes
/// (0 = best per objective), i.e. the negative weighted L1 distance to the
/// utopian vector (Eq. 13).
class BenefitFunction {
 public:
  explicit BenefitFunction(std::array<double, eva::kNumObjectives> weights);

  /// All weights 1 (the paper's default preference).
  static BenefitFunction uniform();

  [[nodiscard]] double value(const eva::OutcomeVector& normalized) const;
  [[nodiscard]] double value(const std::vector<double>& normalized) const;

  [[nodiscard]] const std::array<double, eva::kNumObjectives>& weights()
      const {
    return weights_;
  }
  /// Σ w_i — the worst possible |U| (used by the paper's normalization).
  [[nodiscard]] double weight_sum() const;

 private:
  std::array<double, eva::kNumObjectives> weights_;
};

struct OracleOptions {
  /// Probit response-noise scale on the benefit difference. 0 = perfectly
  /// consistent decision-maker (the paper's evaluation setting).
  double response_noise = 0.0;
};

/// Answers pairwise comparison queries with the true benefit function.
class PreferenceOracle {
 public:
  PreferenceOracle(BenefitFunction benefit, OracleOptions options = {},
                   std::uint64_t seed = 1);

  /// True iff the decision-maker prefers y1 to y2.
  [[nodiscard]] bool prefers(const std::vector<double>& y1,
                             const std::vector<double>& y2);

  [[nodiscard]] const BenefitFunction& benefit() const { return benefit_; }
  [[nodiscard]] std::size_t queries_answered() const { return queries_; }

 private:
  BenefitFunction benefit_;
  OracleOptions options_;
  Rng rng_;
  std::size_t queries_ = 0;
};

}  // namespace pamo::pref
