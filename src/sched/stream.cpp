#include "sched/stream.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pamo::sched {

std::vector<PeriodicStream> split_streams(const eva::Workload& workload,
                                          const eva::JointConfig& config) {
  PAMO_CHECK(config.size() == workload.num_streams(),
             "config size does not match stream count");
  const auto& clock = workload.space.clock();
  std::vector<PeriodicStream> streams;
  streams.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    const auto& clip = workload.clips[i];
    const auto& cfg = config[i];
    const double p = clip.proc_time(cfg.resolution);
    const double rate_product = p * static_cast<double>(cfg.fps);
    const auto splits = rate_product > 1.0
                            ? static_cast<std::uint64_t>(std::ceil(rate_product))
                            : 1ULL;
    const std::uint64_t base_period = clock.period_ticks(cfg.fps);
    for (std::uint64_t k = 0; k < splits; ++k) {
      PeriodicStream s;
      s.parent = i;
      s.period_ticks = base_period * splits;
      s.proc_time = p;
      s.bits_per_frame = clip.bits_per_frame(cfg.resolution);
      s.resolution = cfg.resolution;
      streams.push_back(s);
    }
  }
  return streams;
}

}  // namespace pamo::sched
