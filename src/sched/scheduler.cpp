#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <limits>

#include "common/error.hpp"
#include "sched/constraints.hpp"
#include "sched/hungarian.hpp"

namespace pamo::sched {

namespace {

/// Finalize bookkeeping shared by both schedulers: phases, per-parent
/// uplinks and jitter-free latencies, and the communication cost.
/// `stagger` enables the Theorem-1 start-offset staggering (the zero-jitter
/// scheduler's trick); First-Fit is jitter-oblivious and leaves phases at 0.
void finalize(const eva::Workload& workload, ScheduleResult& result,
              bool stagger) {
  const std::size_t num_parents = workload.num_streams();
  const std::size_t num_servers = workload.num_servers();

  // Stagger start offsets per server in assignment order (Theorem 1 proof:
  // o(τ_k) = Σ_{i<k} p_i within each co-scheduled set). The offsets apply
  // to *arrival at the server*, so each camera's emission phase compensates
  // its own uplink transfer time; a per-server shift keeps phases >= 0.
  result.phase.assign(result.streams.size(), 0.0);
  if (stagger) {
    std::vector<double> server_offset(num_servers, 0.0);
    std::vector<double> min_phase(num_servers, 0.0);
    for (std::size_t i = 0; i < result.streams.size(); ++i) {
      const std::size_t server = result.assignment[i];
      const double transfer = result.streams[i].bits_per_frame /
                              (workload.uplink_mbps[server] * 1e6);
      result.phase[i] = server_offset[server] - transfer;
      min_phase[server] = std::min(min_phase[server], result.phase[i]);
      server_offset[server] += result.streams[i].proc_time;
    }
    for (std::size_t i = 0; i < result.streams.size(); ++i) {
      result.phase[i] -= min_phase[result.assignment[i]];
    }
  }

  result.uplink_per_parent.assign(num_parents, 0.0);
  result.latency_per_parent.assign(num_parents, 0.0);
  std::vector<double> parts(num_parents, 0.0);
  result.comm_cost = 0.0;
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double uplink = workload.uplink_mbps[result.assignment[i]];
    const double net_latency = s.bits_per_frame / (uplink * 1e6);
    result.uplink_per_parent[s.parent] += uplink;
    result.latency_per_parent[s.parent] += s.proc_time + net_latency;
    result.comm_cost += net_latency;
    parts[s.parent] += 1.0;
  }
  for (std::size_t parent = 0; parent < num_parents; ++parent) {
    PAMO_ASSERT(parts[parent] > 0, "parent stream lost during scheduling");
    result.uplink_per_parent[parent] /= parts[parent];
    result.latency_per_parent[parent] /= parts[parent];
  }
}

}  // namespace

ScheduleResult schedule_zero_jitter(const eva::Workload& workload,
                                    const eva::JointConfig& config) {
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t num_servers = workload.num_servers();
  const std::size_t m = result.streams.size();

  // Lines 1–3: sort by period ascending, compute divisor-count priorities,
  // re-sort by priority ascending (stable, so period order breaks ties).
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.streams[a].period_ticks < result.streams[b].period_ticks;
  });
  std::vector<std::size_t> priority(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t ti = result.streams[order[i]].period_ticks;
    std::size_t count = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (ti % result.streams[order[j]].period_ticks == 0) ++count;
    }
    priority[i] = count;
  }
  std::vector<std::size_t> rank(m);
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return priority[a] < priority[b];
  });

  // Lines 4–19: greedy group packing under the Theorem 3 conditions.
  std::vector<std::vector<std::size_t>> groups(num_servers);
  std::vector<std::uint64_t> group_tmin(num_servers, 0);
  std::vector<double> group_proc(num_servers, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t idx = order[rank[r]];
    const auto& stream = result.streams[idx];
    bool placed = false;
    for (std::size_t g = 0; g < num_servers && !placed; ++g) {
      if (groups[g].empty()) {
        groups[g].push_back(idx);
        group_tmin[g] = stream.period_ticks;
        group_proc[g] = stream.proc_time;
        placed = true;
        break;
      }
      // Candidate membership test: all periods must be integer multiples of
      // the new group minimum, and Σp must fit in it (Theorem 3 (a)+(b),
      // generalized to allow a new stream with a smaller period).
      const std::uint64_t new_tmin =
          std::min(group_tmin[g], stream.period_ticks);
      bool divisible = stream.period_ticks % new_tmin == 0;
      if (divisible && new_tmin != group_tmin[g]) {
        for (std::size_t member : groups[g]) {
          if (result.streams[member].period_ticks % new_tmin != 0) {
            divisible = false;
            break;
          }
        }
      }
      const double new_proc = group_proc[g] + stream.proc_time;
      if (divisible && new_proc <= clock.to_seconds(new_tmin) + 1e-12) {
        groups[g].push_back(idx);
        group_tmin[g] = new_tmin;
        group_proc[g] = new_proc;
        placed = true;
      }
    }
    if (!placed) {
      result.feasible = false;  // line 16: no feasible grouping scheme
      return result;
    }
  }

  // Line 20: assign non-empty groups to servers, minimizing total
  // communication latency Σ θ_bit(r_i)/B_{q_i}.
  std::vector<std::size_t> active;
  for (std::size_t g = 0; g < num_servers; ++g) {
    if (!groups[g].empty()) active.push_back(g);
  }
  la::Matrix cost(active.size(), num_servers);
  for (std::size_t a = 0; a < active.size(); ++a) {
    double bits = 0.0;
    for (std::size_t member : groups[active[a]]) {
      bits += result.streams[member].bits_per_frame;
    }
    for (std::size_t server = 0; server < num_servers; ++server) {
      cost(a, server) = bits / (workload.uplink_mbps[server] * 1e6);
    }
  }
  const AssignmentResult assignment = solve_assignment(cost);

  result.assignment.assign(m, 0);
  for (std::size_t a = 0; a < active.size(); ++a) {
    for (std::size_t member : groups[active[a]]) {
      result.assignment[member] = assignment.col_of[a];
    }
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/true);

  PAMO_ASSERT(const2_holds(result.streams, result.assignment, num_servers,
                           clock),
              "Algorithm 1 produced a Const2-violating schedule");
  return result;
}

ScheduleResult schedule_first_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config) {
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t num_servers = workload.num_servers();

  std::vector<double> utilization(num_servers, 0.0);
  result.assignment.assign(result.streams.size(), 0);
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double load = s.proc_time / clock.to_seconds(s.period_ticks);
    bool placed = false;
    for (std::size_t server = 0; server < num_servers; ++server) {
      if (utilization[server] + load <= 1.0 + 1e-12) {
        utilization[server] += load;
        result.assignment[i] = server;
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.feasible = false;
      return result;
    }
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

ScheduleResult schedule_worst_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config) {
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t num_servers = workload.num_servers();

  std::vector<double> utilization(num_servers, 0.0);
  result.assignment.assign(result.streams.size(), 0);
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double load = s.proc_time / clock.to_seconds(s.period_ticks);
    std::size_t best_server = num_servers;  // sentinel: none fits
    double best_util = std::numeric_limits<double>::max();
    for (std::size_t server = 0; server < num_servers; ++server) {
      if (utilization[server] + load <= 1.0 + 1e-12 &&
          utilization[server] < best_util) {
        best_util = utilization[server];
        best_server = server;
      }
    }
    if (best_server == num_servers) {
      result.feasible = false;
      return result;
    }
    utilization[best_server] += load;
    result.assignment[i] = best_server;
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

ScheduleResult schedule_fixed_assignment(
    const eva::Workload& workload, const eva::JointConfig& config,
    const std::vector<std::size_t>& server_per_parent) {
  PAMO_CHECK(server_per_parent.size() == workload.num_streams(),
             "per-parent assignment size mismatch");
  for (std::size_t server : server_per_parent) {
    PAMO_CHECK(server < workload.num_servers(), "server index out of range");
  }
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  result.assignment.reserve(result.streams.size());
  for (const auto& s : result.streams) {
    result.assignment.push_back(server_per_parent[s.parent]);
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

}  // namespace pamo::sched
