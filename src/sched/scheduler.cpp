#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "sched/constraints.hpp"
#include "sched/hungarian.hpp"

namespace pamo::sched {

namespace {

/// Finalize bookkeeping shared by both schedulers: phases, per-parent
/// uplinks and jitter-free latencies, and the communication cost.
/// `stagger` enables the Theorem-1 start-offset staggering (the zero-jitter
/// scheduler's trick); First-Fit is jitter-oblivious and leaves phases at 0.
/// `proc_headroom` widens the stagger spacing for straggler-aware repair
/// schedules; the Eq. 5 latency bookkeeping always uses nominal times.
void finalize(const eva::Workload& workload, ScheduleResult& result,
              bool stagger, double proc_headroom = 1.0) {
  const std::size_t num_parents = workload.num_streams();
  const std::size_t num_servers = workload.num_servers();

  // Stagger start offsets per server in assignment order (Theorem 1 proof:
  // o(τ_k) = Σ_{i<k} p_i within each co-scheduled set). The offsets apply
  // to *arrival at the server*, so each camera's emission phase compensates
  // its own uplink transfer time; a per-server shift keeps phases >= 0.
  result.phase.assign(result.streams.size(), 0.0);
  if (stagger) {
    std::vector<double> server_offset(num_servers, 0.0);
    std::vector<double> min_phase(num_servers, 0.0);
    for (std::size_t i = 0; i < result.streams.size(); ++i) {
      const std::size_t server = result.assignment[i];
      const double transfer = result.streams[i].bits_per_frame /
                              (workload.uplink_mbps[server] * 1e6);
      result.phase[i] = server_offset[server] - transfer;
      min_phase[server] = std::min(min_phase[server], result.phase[i]);
      server_offset[server] += result.streams[i].proc_time * proc_headroom;
    }
    for (std::size_t i = 0; i < result.streams.size(); ++i) {
      result.phase[i] -= min_phase[result.assignment[i]];
    }
  }

  result.uplink_per_parent.assign(num_parents, 0.0);
  result.latency_per_parent.assign(num_parents, 0.0);
  std::vector<double> parts(num_parents, 0.0);
  result.comm_cost = 0.0;
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double uplink = workload.uplink_mbps[result.assignment[i]];
    const double net_latency = s.bits_per_frame / (uplink * 1e6);
    result.uplink_per_parent[s.parent] += uplink;
    result.latency_per_parent[s.parent] += s.proc_time + net_latency;
    result.comm_cost += net_latency;
    parts[s.parent] += 1.0;
  }
  for (std::size_t parent = 0; parent < num_parents; ++parent) {
    PAMO_ASSERT(parts[parent] > 0, "parent stream lost during scheduling");
    result.uplink_per_parent[parent] /= parts[parent];
    result.latency_per_parent[parent] /= parts[parent];
  }
  // Shape contract every scheduler entry point inherits: one assignment and
  // phase per split stream, one uplink/latency per parent stream.
  PAMO_ENSURES(result.assignment.size() == result.streams.size() &&
                   result.phase.size() == result.streams.size(),
               "per-split-stream vectors must align");
  PAMO_ENSURES(result.uplink_per_parent.size() == num_parents &&
                   result.latency_per_parent.size() == num_parents,
               "per-parent vectors must align");
}

/// One co-scheduled set being packed under the Theorem 3 conditions.
struct Group {
  std::vector<std::size_t> members;
  std::uint64_t tmin = 0;
  double proc = 0.0;  // Σ of (possibly headroom-inflated) processing times
};

/// Membership test of Algorithm 1 lines 4–19: all periods must be integer
/// multiples of the new group minimum, and Σp must fit in it (Theorem 3
/// (a)+(b), generalized to allow a new stream with a smaller period).
/// Joins the group and returns true on success.
bool try_join(Group& group, std::size_t idx,
              const std::vector<PeriodicStream>& streams,
              const std::vector<double>& proc, const TickClock& clock) {
  const auto& stream = streams[idx];
  if (group.members.empty()) {
    group.members.push_back(idx);
    group.tmin = stream.period_ticks;
    group.proc = proc[idx];
    return true;
  }
  const std::uint64_t new_tmin = std::min(group.tmin, stream.period_ticks);
  bool divisible = stream.period_ticks % new_tmin == 0;
  if (divisible && new_tmin != group.tmin) {
    for (std::size_t member : group.members) {
      if (streams[member].period_ticks % new_tmin != 0) {
        divisible = false;
        break;
      }
    }
  }
  const double new_proc = group.proc + proc[idx];
  if (!divisible || new_proc > clock.to_seconds(new_tmin) + 1e-12) {
    return false;
  }
  group.members.push_back(idx);
  group.tmin = new_tmin;
  group.proc = new_proc;
  return true;
}

/// Lines 1–3 of Algorithm 1 over a subset of stream indices: sort by
/// period ascending, compute divisor-count priorities, re-sort by priority
/// ascending (stable, so period order breaks ties).
std::vector<std::size_t> alg1_order(const std::vector<PeriodicStream>& streams,
                                    std::vector<std::size_t> subset) {
  std::stable_sort(subset.begin(), subset.end(),
                   [&](std::size_t a, std::size_t b) {
                     return streams[a].period_ticks < streams[b].period_ticks;
                   });
  const std::size_t m = subset.size();
  std::vector<std::size_t> priority(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t ti = streams[subset[i]].period_ticks;
    std::size_t count = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (ti % streams[subset[j]].period_ticks == 0) ++count;
    }
    priority[i] = count;
  }
  std::vector<std::size_t> rank(m);
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return priority[a] < priority[b];
  });
  std::vector<std::size_t> ordered(m);
  for (std::size_t r = 0; r < m; ++r) ordered[r] = subset[rank[r]];
  return ordered;
}

/// Algorithm 1 over the given (ascending) list of usable server indices.
ScheduleResult zero_jitter_impl(const eva::Workload& workload,
                                const eva::JointConfig& config,
                                const std::vector<std::size_t>& servers,
                                double proc_headroom) {
  PAMO_EXPECTS(config.size() == workload.num_streams(),
               "one knob configuration per parent stream");
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t m = result.streams.size();
  std::vector<double> proc(m);
  for (std::size_t i = 0; i < m; ++i) {
    proc[i] = result.streams[i].proc_time * proc_headroom;
  }

  std::vector<std::size_t> all(m);
  std::iota(all.begin(), all.end(), 0);
  const std::vector<std::size_t> ordered = alg1_order(result.streams, all);

  // Lines 4–19: greedy group packing under the Theorem 3 conditions, one
  // potential group per usable server.
  std::vector<Group> groups(servers.size());
  for (std::size_t idx : ordered) {
    bool placed = false;
    for (auto& group : groups) {
      if (try_join(group, idx, result.streams, proc, clock)) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.feasible = false;  // line 16: no feasible grouping scheme
      return result;
    }
  }

  // Line 20: assign non-empty groups to the usable servers, minimizing
  // total communication latency Σ θ_bit(r_i)/B_{q_i}.
  std::vector<std::size_t> active;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!groups[g].members.empty()) active.push_back(g);
  }
  la::Matrix cost(active.size(), servers.size());
  for (std::size_t a = 0; a < active.size(); ++a) {
    double bits = 0.0;
    for (std::size_t member : groups[active[a]].members) {
      bits += result.streams[member].bits_per_frame;
    }
    for (std::size_t j = 0; j < servers.size(); ++j) {
      cost(a, j) = bits / (workload.uplink_mbps[servers[j]] * 1e6);
    }
  }
  const AssignmentResult assignment = solve_assignment(cost);

  result.assignment.assign(m, 0);
  for (std::size_t a = 0; a < active.size(); ++a) {
    for (std::size_t member : groups[active[a]].members) {
      result.assignment[member] = servers[assignment.col_of[a]];
    }
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/true, proc_headroom);

  PAMO_ASSERT(const2_holds(result.streams, result.assignment,
                           workload.num_servers(), clock),
              "Algorithm 1 produced a Const2-violating schedule");
  return result;
}

/// Usable-server index list from a mask (with validation).
std::vector<std::size_t> usable_list(const eva::Workload& workload,
                                     const std::vector<bool>& server_usable) {
  PAMO_CHECK(server_usable.size() == workload.num_servers(),
             "usable-server mask size mismatch");
  std::vector<std::size_t> servers;
  for (std::size_t s = 0; s < server_usable.size(); ++s) {
    if (server_usable[s]) servers.push_back(s);
  }
  PAMO_CHECK(!servers.empty(), "no usable servers left");
  return servers;
}

}  // namespace

ScheduleResult schedule_zero_jitter(const eva::Workload& workload,
                                    const eva::JointConfig& config) {
  PAMO_SPAN("sched.zero_jitter");
  std::vector<std::size_t> servers(workload.num_servers());
  std::iota(servers.begin(), servers.end(), 0);
  ScheduleResult result =
      zero_jitter_impl(workload, config, servers, /*proc_headroom=*/1.0);
  PAMO_COUNT("sched.zero_jitter_calls", 1);
  PAMO_COUNT("sched.zero_jitter_infeasible", result.feasible ? 0 : 1);
  return result;
}

ScheduleResult schedule_zero_jitter_masked(
    const eva::Workload& workload, const eva::JointConfig& config,
    const std::vector<bool>& server_usable, double proc_headroom) {
  PAMO_CHECK(proc_headroom >= 1.0, "processing headroom must be >= 1");
  return zero_jitter_impl(workload, config,
                          usable_list(workload, server_usable),
                          proc_headroom);
}

ScheduleResult reschedule_pinned(const eva::Workload& workload,
                                 const eva::JointConfig& config,
                                 const ScheduleResult& previous,
                                 const std::vector<bool>& server_usable,
                                 double proc_headroom) {
  PAMO_CHECK(proc_headroom >= 1.0, "processing headroom must be >= 1");
  PAMO_CHECK(server_usable.size() == workload.num_servers(),
             "usable-server mask size mismatch");
  if (std::none_of(server_usable.begin(), server_usable.end(),
                   [](bool u) { return u; })) {
    // Repair entry point: zero survivors is an environment state, not a
    // caller bug — report infeasible so the resilience loop can escalate.
    ScheduleResult result;
    result.feasible = false;
    return result;
  }
  const std::vector<std::size_t> servers =
      usable_list(workload, server_usable);
  const std::size_t num_servers = workload.num_servers();

  ScheduleResult result;
  result.streams = split_streams(workload, config);
  PAMO_CHECK(previous.streams.size() == result.streams.size() &&
                 previous.assignment.size() == previous.streams.size(),
             "previous schedule does not match this configuration");
  const auto& clock = workload.space.clock();
  const std::size_t m = result.streams.size();
  std::vector<double> proc(m);
  for (std::size_t i = 0; i < m; ++i) {
    proc[i] = result.streams[i].proc_time * proc_headroom;
  }

  std::vector<std::size_t> group_of(num_servers, num_servers);
  for (std::size_t g = 0; g < servers.size(); ++g) {
    group_of[servers[g]] = g;
  }

  // Partition: streams on usable servers stay pinned; the rest are
  // orphans. Pinned members re-join their group in ascending-period order
  // (any Theorem 3 group is prefix-valid in that order), which also
  // re-validates the group under the inflated processing times.
  std::vector<Group> groups(servers.size());
  std::vector<std::size_t> pinned;
  std::vector<std::size_t> orphans;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t prev = previous.assignment[i];
    PAMO_CHECK(prev < num_servers, "previous assignment out of range");
    if (server_usable[prev]) {
      pinned.push_back(i);
    } else {
      orphans.push_back(i);
    }
  }
  std::stable_sort(pinned.begin(), pinned.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.streams[a].period_ticks <
                            result.streams[b].period_ticks;
                   });
  for (std::size_t idx : pinned) {
    Group& group = groups[group_of[previous.assignment[idx]]];
    if (!try_join(group, idx, result.streams, proc, clock)) {
      // The surviving placement no longer fits (e.g. straggler headroom
      // ate the slack): signal the caller to fall back to a full re-pack.
      result.feasible = false;
      return result;
    }
  }

  for (std::size_t idx : alg1_order(result.streams, orphans)) {
    bool placed = false;
    for (auto& group : groups) {
      if (try_join(group, idx, result.streams, proc, clock)) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.feasible = false;
      return result;
    }
  }

  result.assignment.assign(m, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t member : groups[g].members) {
      result.assignment[member] = servers[g];
    }
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/true, proc_headroom);

  PAMO_ASSERT(const2_holds(result.streams, result.assignment, num_servers,
                           clock),
              "pinned repair produced a Const2-violating schedule");
  return result;
}

ScheduleResult schedule_first_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config) {
  PAMO_CHECK(config.size() == workload.num_streams(),
             "joint config size mismatch");
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t num_servers = workload.num_servers();

  std::vector<double> utilization(num_servers, 0.0);
  result.assignment.assign(result.streams.size(), 0);
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double load = s.proc_time / clock.to_seconds(s.period_ticks);
    bool placed = false;
    for (std::size_t server = 0; server < num_servers; ++server) {
      if (utilization[server] + load <= 1.0 + 1e-12) {
        utilization[server] += load;
        result.assignment[i] = server;
        placed = true;
        break;
      }
    }
    if (!placed) {
      result.feasible = false;
      return result;
    }
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

ScheduleResult schedule_worst_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config) {
  PAMO_CHECK(config.size() == workload.num_streams(),
             "joint config size mismatch");
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  const auto& clock = workload.space.clock();
  const std::size_t num_servers = workload.num_servers();

  std::vector<double> utilization(num_servers, 0.0);
  result.assignment.assign(result.streams.size(), 0);
  for (std::size_t i = 0; i < result.streams.size(); ++i) {
    const auto& s = result.streams[i];
    const double load = s.proc_time / clock.to_seconds(s.period_ticks);
    std::size_t best_server = num_servers;  // sentinel: none fits
    double best_util = std::numeric_limits<double>::max();
    for (std::size_t server = 0; server < num_servers; ++server) {
      if (utilization[server] + load <= 1.0 + 1e-12 &&
          utilization[server] < best_util) {
        best_util = utilization[server];
        best_server = server;
      }
    }
    if (best_server == num_servers) {
      result.feasible = false;
      return result;
    }
    utilization[best_server] += load;
    result.assignment[i] = best_server;
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

ScheduleResult assemble_zero_jitter(const eva::Workload& workload,
                                    std::vector<PeriodicStream> streams,
                                    std::vector<std::size_t> assignment,
                                    double proc_headroom) {
  PAMO_CHECK(proc_headroom >= 1.0, "processing headroom must be >= 1");
  PAMO_CHECK(assignment.size() == streams.size(),
             "one server per split stream");
  for (std::size_t server : assignment) {
    PAMO_CHECK(server < workload.num_servers(), "server index out of range");
  }
  ScheduleResult result;
  result.streams = std::move(streams);
  result.assignment = std::move(assignment);
  result.feasible = true;
  finalize(workload, result, /*stagger=*/true, proc_headroom);
  PAMO_ASSERT(const2_holds(result.streams, result.assignment,
                           workload.num_servers(), workload.space.clock()),
              "assembled assignment violates Const2");
  return result;
}

ScheduleResult schedule_fixed_assignment(
    const eva::Workload& workload, const eva::JointConfig& config,
    const std::vector<std::size_t>& server_per_parent) {
  PAMO_CHECK(server_per_parent.size() == workload.num_streams(),
             "per-parent assignment size mismatch");
  for (std::size_t server : server_per_parent) {
    PAMO_CHECK(server < workload.num_servers(), "server index out of range");
  }
  ScheduleResult result;
  result.streams = split_streams(workload, config);
  result.assignment.reserve(result.streams.size());
  for (const auto& s : result.streams) {
    result.assignment.push_back(server_per_parent[s.parent]);
  }
  result.feasible = true;
  finalize(workload, result, /*stagger=*/false);
  return result;
}

}  // namespace pamo::sched
