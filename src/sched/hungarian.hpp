// Hungarian algorithm (shortest-augmenting-path / Jonker–Volgenant form,
// O(n²m)) for the minimum-cost assignment of stream groups to servers —
// line 20 of Algorithm 1, minimizing total communication latency. Also the
// assignment-relaxation lower bound of the branch-and-bound placement
// engine (sched/bnb.hpp), which is why the rectangular and degenerate
// shapes (0 rows, 1×n, ties) are part of the contract rather than
// accidents of the implementation.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pamo::sched {

struct AssignmentResult {
  /// col_of[r] = column assigned to row r. Empty for a 0-row problem.
  std::vector<std::size_t> col_of;
  double total_cost = 0.0;
  /// LP dual certificate (see solve_assignment): row potential u and
  /// column potential v with u[i] + v[j] <= cost(i, j) for every cell,
  /// equality on every matched cell, and v[j] == 0 on unmatched columns.
  /// Any feasible assignment A then costs at least Σ u + Σ_{j∈A} v[j]
  /// >= total_cost, so the potentials *prove* optimality — the property
  /// tests check exactly this reduced-cost certificate.
  std::vector<double> row_potential;  // size rows
  std::vector<double> col_potential;  // size cols
};

/// Minimum-cost assignment for a rows×cols cost matrix with rows <= cols
/// and finite, non-negative costs. Every row is assigned a distinct
/// column. Degenerate shapes are well-defined: 0 rows returns an empty
/// assignment of cost 0 (with zero potentials), and a 1×n matrix returns
/// the cheapest column (lowest index on ties). Ties anywhere resolve
/// deterministically — the scan order of the augmenting search prefers
/// lower column indices, so identical inputs always produce identical
/// assignments.
AssignmentResult solve_assignment(const la::Matrix& cost);

}  // namespace pamo::sched
