// Hungarian algorithm (shortest-augmenting-path / Jonker–Volgenant form,
// O(n²m)) for the minimum-cost assignment of stream groups to servers —
// line 20 of Algorithm 1, minimizing total communication latency.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pamo::sched {

struct AssignmentResult {
  /// col_of[r] = column assigned to row r.
  std::vector<std::size_t> col_of;
  double total_cost = 0.0;
};

/// Minimum-cost assignment for a rows×cols cost matrix with rows <= cols.
/// Every row is assigned a distinct column.
AssignmentResult solve_assignment(const la::Matrix& cost);

}  // namespace pamo::sched
