#include "sched/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/ticks.hpp"
#include "la/matrix.hpp"
#include "obs/obs.hpp"
#include "sched/constraints.hpp"
#include "sched/hungarian.hpp"
#include "sched/stream.hpp"

namespace pamo::sched {

namespace {

constexpr double kEps = 1e-15;      // incumbent-vs-bound pruning tolerance
constexpr double kJoinTol = 1e-12;  // gcd-condition tolerance (as exact.cpp)
constexpr double kInf = std::numeric_limits<double>::infinity();

struct GroupState {
  std::uint64_t gcd_ticks = 0;
  double proc_sum = 0.0;  // raw Σ p_i; the headroom factor applies in joins
  double bits_sum = 0.0;
};

/// One knob choice for a parent stream: the configuration, its objective
/// penalty, the sub-streams it splits into, and suffix bit sums for the
/// unplaced-tail lower bound (tail_bits[k] = Σ_{j >= k} subs[j].bits).
struct Variant {
  eva::StreamConfig knob;
  double penalty = 0.0;
  std::vector<PeriodicStream> subs;
  std::vector<double> tail_bits;
};

/// The placement work for one parent: choose a variant, then place each of
/// its sub-streams. lb_cost is the cheapest conceivable contribution
/// (min over variants of penalty + bits at the fastest usable uplink).
struct ParentTask {
  std::size_t parent = 0;
  double max_proc = 0.0;  // ordering key: nominal variant's largest p_i
  double lb_cost = 0.0;
  std::vector<Variant> variants;
};

/// Mutable search position, reconstructed from a decision path. Placement
/// codes for the current sub-stream: [0, B) = bound slot (server-pinned
/// group), [B, B+A) = existing anonymous group, B+A = open a new anonymous
/// group (only while fewer anonymous groups than free servers exist).
struct State {
  std::vector<GroupState> bound_groups;
  std::vector<GroupState> anon_groups;
  double committed = 0.0;  // exact: bound-group comm cost + knob penalties
  std::size_t task = 0;
  std::size_t variant = 0;
  std::size_t sub = 0;
  bool in_variant = false;
  std::vector<std::size_t> chosen_variant;            // per task
  std::vector<std::vector<std::uint16_t>> placements;  // per task, per sub
};

struct Node {
  double bound = 0.0;
  std::uint64_t seq = 0;
  std::vector<std::uint16_t> path;
};

/// Best-first order: smallest bound, then deepest path (closer to a leaf),
/// then earliest creation. Chained strict comparisons — no floating-point
/// equality test is needed for the tie levels.
struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound > b.bound) return true;
    if (b.bound > a.bound) return false;
    if (a.path.size() != b.path.size()) return a.path.size() < b.path.size();
    return a.seq > b.seq;
  }
};

struct SearchContext {
  const eva::Workload* workload = nullptr;
  const TickClock* clock = nullptr;
  double headroom = 1.0;
  double max_uplink = 0.0;  // fastest usable uplink (Mbps)
  bool assignment_bound = true;
  std::vector<std::size_t> bound_servers;  // server index per bound slot
  std::vector<std::size_t> free_servers;   // usable servers with no pinning
  std::vector<ParentTask> tasks;
  std::vector<double> suffix_lb;  // suffix_lb[t] = Σ_{t' >= t} lb_cost
  std::vector<PeriodicStream> pinned_streams;
  std::vector<std::size_t> pinned_assignment;
  State root;
};

/// Theorem-1 gcd-condition join (headroom-inflated, same tolerance as the
/// exhaustive search). Mutates `group` only on success.
bool join_group(const SearchContext& ctx, GroupState& group,
                const PeriodicStream& stream) {
  const std::uint64_t new_gcd =
      group.gcd_ticks == 0 ? stream.period_ticks
                           : std::gcd(group.gcd_ticks, stream.period_ticks);
  const double new_proc = group.proc_sum + stream.proc_time;
  if (new_proc * ctx.headroom > ctx.clock->to_seconds(new_gcd) + kJoinTol) {
    return false;
  }
  group.gcd_ticks = new_gcd;
  group.proc_sum = new_proc;
  group.bits_sum += stream.bits_per_frame;
  return true;
}

/// Apply one decision code to `state`. Returns false (state possibly
/// partially read but unmodified) when the code is out of range or the
/// placement violates the gcd condition.
bool apply_decision(const SearchContext& ctx, State& state,
                    std::uint16_t code) {
  const ParentTask& task = ctx.tasks[state.task];
  if (!state.in_variant) {
    if (code >= task.variants.size()) return false;
    state.variant = code;
    state.chosen_variant[state.task] = code;
    state.committed += task.variants[code].penalty;
    state.in_variant = true;
    state.sub = 0;
    if (task.variants[code].subs.empty()) {
      ++state.task;
      state.in_variant = false;
    }
    return true;
  }
  const Variant& variant = task.variants[state.variant];
  const PeriodicStream& stream = variant.subs[state.sub];
  const std::size_t num_bound = ctx.bound_servers.size();
  const std::size_t num_anon = state.anon_groups.size();
  if (code < num_bound) {
    if (!join_group(ctx, state.bound_groups[code], stream)) return false;
    state.committed +=
        stream.bits_per_frame /
        (ctx.workload->uplink_mbps[ctx.bound_servers[code]] * 1e6);
  } else if (code < num_bound + num_anon) {
    if (!join_group(ctx, state.anon_groups[code - num_bound], stream)) {
      return false;
    }
  } else if (code == num_bound + num_anon &&
             num_anon < ctx.free_servers.size()) {
    GroupState fresh;
    if (!join_group(ctx, fresh, stream)) return false;
    state.anon_groups.push_back(fresh);
  } else {
    return false;
  }
  state.placements[state.task].push_back(code);
  ++state.sub;
  if (state.sub == variant.subs.size()) {
    ++state.task;
    state.in_variant = false;
  }
  return true;
}

State replay_path(const SearchContext& ctx,
                  const std::vector<std::uint16_t>& path) {
  State state = ctx.root;
  for (const std::uint16_t code : path) {
    const bool ok = apply_decision(ctx, state, code);
    PAMO_ASSERT(ok, "a recorded branch-and-bound path must replay feasibly");
  }
  return state;
}

la::Matrix anon_cost_matrix(const SearchContext& ctx, const State& state) {
  la::Matrix cost(state.anon_groups.size(), ctx.free_servers.size());
  for (std::size_t a = 0; a < state.anon_groups.size(); ++a) {
    for (std::size_t f = 0; f < ctx.free_servers.size(); ++f) {
      cost(a, f) = state.anon_groups[a].bits_sum /
                   (ctx.workload->uplink_mbps[ctx.free_servers[f]] * 1e6);
    }
  }
  return cost;
}

/// Lower bound on the eventual cost of the anonymous groups: the optimal
/// injective mapping of their *current* bits onto the free servers (any
/// completion can only grow the groups), or the weaker all-at-the-fastest-
/// uplink sum when the assignment bound is disabled.
double anon_lower_bound(const SearchContext& ctx, const State& state) {
  if (state.anon_groups.empty()) return 0.0;
  if (!ctx.assignment_bound) {
    double bits = 0.0;
    for (const GroupState& group : state.anon_groups) bits += group.bits_sum;
    return bits / (ctx.max_uplink * 1e6);
  }
  return solve_assignment(anon_cost_matrix(ctx, state)).total_cost;
}

/// Admissible lower bound for a partial state: exact committed cost, the
/// assignment relaxation of the anonymous groups, the current variant's
/// unplaced tail at the fastest uplink, and the cheapest-variant suffix of
/// the untouched tasks.
double node_bound(const SearchContext& ctx, const State& state) {
  double bound = state.committed + anon_lower_bound(ctx, state);
  std::size_t next_task = state.task;
  if (state.in_variant) {
    const Variant& variant = ctx.tasks[state.task].variants[state.variant];
    bound += variant.tail_bits[state.sub] / (ctx.max_uplink * 1e6);
    next_task = state.task + 1;
  }
  bound += ctx.suffix_lb[next_task];
  return bound;
}

/// Exact objective of a terminal state: committed cost plus the optimal
/// anonymous-group→free-server assignment (always exact, regardless of
/// the interior-bound mode).
double leaf_objective(const SearchContext& ctx, const State& state) {
  if (state.anon_groups.empty()) return state.committed;
  return state.committed +
         solve_assignment(anon_cost_matrix(ctx, state)).total_cost;
}

/// Rebuild the complete schedule from a terminal decision path: pinned
/// streams keep their servers, placed streams get their group's server
/// (bound slot directly, anonymous groups through the Hungarian mapping),
/// and the chosen knob variants overwrite the nominal configuration.
BnbResult build_result(const SearchContext& ctx, const eva::JointConfig& config,
                       const std::vector<std::uint16_t>& path,
                       double objective) {
  State state = replay_path(ctx, path);
  PAMO_ASSERT(state.task == ctx.tasks.size(),
              "result paths must describe a complete assignment");
  std::vector<std::size_t> anon_server(state.anon_groups.size(), 0);
  if (!state.anon_groups.empty()) {
    const AssignmentResult mapping =
        solve_assignment(anon_cost_matrix(ctx, state));
    for (std::size_t a = 0; a < anon_server.size(); ++a) {
      anon_server[a] = ctx.free_servers[mapping.col_of[a]];
    }
  }
  BnbResult result;
  result.config = config;
  std::vector<PeriodicStream> streams = ctx.pinned_streams;
  std::vector<std::size_t> assignment = ctx.pinned_assignment;
  double penalties = 0.0;
  for (std::size_t t = 0; t < ctx.tasks.size(); ++t) {
    const ParentTask& task = ctx.tasks[t];
    const Variant& variant = task.variants[state.chosen_variant[t]];
    penalties += variant.penalty;
    result.config[task.parent] = variant.knob;
    PAMO_ASSERT(state.placements[t].size() == variant.subs.size(),
                "every sub-stream of a completed task must be placed");
    for (std::size_t s = 0; s < variant.subs.size(); ++s) {
      const std::uint16_t code = state.placements[t][s];
      streams.push_back(variant.subs[s]);
      assignment.push_back(code < ctx.bound_servers.size()
                               ? ctx.bound_servers[code]
                               : anon_server[code - ctx.bound_servers.size()]);
    }
  }
  result.schedule = assemble_zero_jitter(*ctx.workload, std::move(streams),
                                         std::move(assignment), ctx.headroom);
  result.objective = objective;
  const double rebuilt = result.schedule.comm_cost + penalties;
  PAMO_ASSERT(
      std::abs(rebuilt - objective) <= 1e-9 * (1.0 + std::abs(objective)),
      "the incremental objective must match the assembled schedule's cost");
  return result;
}

BnbResult infeasible_result(const eva::JointConfig& config) {
  BnbResult result;
  result.status = BnbStatus::kInfeasible;
  result.config = config;
  result.objective = kInf;
  result.lower_bound = kInf;
  return result;
}

BnbResult run_bnb(const eva::Workload& workload, const eva::JointConfig& config,
                  const BnbOptions& options, const ScheduleResult* previous,
                  const std::vector<bool>* usable_in, double headroom) {
  PAMO_CHECK(config.size() == workload.num_streams(),
             "joint config must cover every stream");
  PAMO_CHECK(options.knob_alternatives.empty() ||
                 options.knob_alternatives.size() == workload.num_streams(),
             "knob_alternatives must be empty or one list per stream");
  PAMO_CHECK(options.degrade_penalty >= 0.0,
             "degrade penalty must be non-negative");
  PAMO_CHECK(headroom >= 1.0, "processing headroom must be >= 1");
  PAMO_CHECK(workload.num_servers() + 2 < 65535,
             "server count exceeds the 16-bit decision encoding");

  const std::size_t num_servers = workload.num_servers();
  const std::vector<bool> usable =
      usable_in ? *usable_in : std::vector<bool>(num_servers, true);
  PAMO_CHECK(usable.size() == num_servers, "one usable flag per server");

  SearchContext ctx;
  ctx.workload = &workload;
  ctx.clock = &workload.space.clock();
  ctx.headroom = headroom;
  ctx.assignment_bound = options.assignment_bound;

  // ---- Pinned / orphan classification -----------------------------------
  const std::vector<PeriodicStream> nominal = split_streams(workload, config);
  std::vector<std::vector<PeriodicStream>> orphan_subs(workload.num_streams());
  std::vector<bool> parent_pinned(workload.num_streams(), false);
  if (previous != nullptr) {
    PAMO_CHECK(previous->streams.size() == previous->assignment.size(),
               "previous schedule must be internally consistent");
    PAMO_CHECK(previous->streams.size() == nominal.size(),
               "previous schedule must match the (workload, config) split");
    for (std::size_t i = 0; i < previous->streams.size(); ++i) {
      const std::size_t server = previous->assignment[i];
      PAMO_CHECK(server < num_servers,
                 "previous assignment references an unknown server");
      if (usable[server]) {
        ctx.pinned_streams.push_back(previous->streams[i]);
        ctx.pinned_assignment.push_back(server);
        parent_pinned[previous->streams[i].parent] = true;
      } else {
        orphan_subs[previous->streams[i].parent].push_back(
            previous->streams[i]);
      }
    }
  }

  // ---- Bound groups (server-pinned), free servers, fastest uplink -------
  std::vector<GroupState> group_by_server(num_servers);
  std::vector<bool> has_pinned(num_servers, false);
  for (std::size_t i = 0; i < ctx.pinned_streams.size(); ++i) {
    const std::size_t server = ctx.pinned_assignment[i];
    GroupState& group = group_by_server[server];
    group.gcd_ticks =
        std::gcd(group.gcd_ticks, ctx.pinned_streams[i].period_ticks);
    group.proc_sum += ctx.pinned_streams[i].proc_time;
    group.bits_sum += ctx.pinned_streams[i].bits_per_frame;
    has_pinned[server] = true;
  }
  for (std::size_t server = 0; server < num_servers; ++server) {
    if (has_pinned[server]) {
      const GroupState& group = group_by_server[server];
      if (group.proc_sum * headroom >
          ctx.clock->to_seconds(group.gcd_ticks) + kJoinTol) {
        // The surviving placement itself no longer fits under the headroom:
        // no pinned repair exists (a full re-pack might still).
        return infeasible_result(config);
      }
      ctx.bound_servers.push_back(server);
      ctx.root.bound_groups.push_back(group);
      ctx.root.committed +=
          group.bits_sum / (workload.uplink_mbps[server] * 1e6);
    } else if (usable[server]) {
      ctx.free_servers.push_back(server);
    }
    if (usable[server]) {
      ctx.max_uplink = std::max(ctx.max_uplink, workload.uplink_mbps[server]);
    }
  }

  // ---- Parent tasks ------------------------------------------------------
  for (std::size_t p = 0; p < workload.num_streams(); ++p) {
    if (previous != nullptr && parent_pinned[p]) {
      // Knob fixed by the schedule under repair; only orphans need placing.
      PAMO_CHECK(options.knob_alternatives.empty() ||
                     options.knob_alternatives[p].empty(),
                 "knob alternatives are not allowed for parents with pinned "
                 "sub-streams");
      if (orphan_subs[p].empty()) continue;
      ParentTask task;
      task.parent = p;
      Variant fixed;
      fixed.knob = config[p];
      fixed.subs = orphan_subs[p];
      task.variants.push_back(std::move(fixed));
      ctx.tasks.push_back(std::move(task));
      continue;
    }
    ParentTask task;
    task.parent = p;
    Variant nominal_variant;
    nominal_variant.knob = config[p];
    if (previous != nullptr) {
      nominal_variant.subs = orphan_subs[p];  // fully orphaned: all subs
    } else {
      for (const PeriodicStream& stream : nominal) {
        if (stream.parent == p) nominal_variant.subs.push_back(stream);
      }
    }
    task.variants.push_back(std::move(nominal_variant));
    if (!options.knob_alternatives.empty()) {
      eva::JointConfig alt_config = config;
      const auto& alternatives = options.knob_alternatives[p];
      for (std::size_t k = 0; k < alternatives.size(); ++k) {
        alt_config[p] = alternatives[k];
        Variant alt;
        alt.knob = alternatives[k];
        alt.penalty = options.degrade_penalty * static_cast<double>(k + 1);
        for (const PeriodicStream& stream :
             split_streams(workload, alt_config)) {
          if (stream.parent == p) alt.subs.push_back(stream);
        }
        task.variants.push_back(std::move(alt));
      }
    }
    ctx.tasks.push_back(std::move(task));
  }

  // ---- Trivial and degenerate roots -------------------------------------
  if (ctx.tasks.empty()) {
    // Nothing to place (empty workload, or a pinned repair with no
    // orphans): the committed placement is the unique — hence optimal —
    // completion.
    BnbResult result = build_result(ctx, config, {}, ctx.root.committed);
    result.status = BnbStatus::kOptimal;
    result.lower_bound = result.objective;
    return result;
  }
  if (!(ctx.max_uplink > 0.0)) {
    // Streams to place but no usable server: proven infeasible.
    return infeasible_result(config);
  }

  // ---- Per-task bounds and deterministic ordering ------------------------
  for (ParentTask& task : ctx.tasks) {
    double cheapest = kInf;
    for (Variant& variant : task.variants) {
      variant.tail_bits.assign(variant.subs.size() + 1, 0.0);
      for (std::size_t k = variant.subs.size(); k > 0; --k) {
        variant.tail_bits[k - 1] =
            variant.tail_bits[k] + variant.subs[k - 1].bits_per_frame;
      }
      cheapest = std::min(cheapest, variant.penalty + variant.tail_bits[0] /
                                                         (ctx.max_uplink * 1e6));
    }
    task.lb_cost = cheapest;
    PAMO_ASSERT(!task.variants.empty(),
                "every task carries at least its nominal variant");
    for (const PeriodicStream& stream : task.variants.front().subs) {
      task.max_proc = std::max(task.max_proc, stream.proc_time);
    }
  }
  // Hardest parents first (fails fast on tight instances); parent index
  // breaks ties so the expansion order is deterministic.
  std::sort(ctx.tasks.begin(), ctx.tasks.end(),
            [](const ParentTask& a, const ParentTask& b) {
              if (a.max_proc > b.max_proc) return true;
              if (b.max_proc > a.max_proc) return false;
              return a.parent < b.parent;
            });
  ctx.suffix_lb.assign(ctx.tasks.size() + 1, 0.0);
  for (std::size_t t = ctx.tasks.size(); t > 0; --t) {
    ctx.suffix_lb[t - 1] = ctx.suffix_lb[t] + ctx.tasks[t - 1].lb_cost;
  }
  ctx.root.chosen_variant.assign(ctx.tasks.size(), 0);
  ctx.root.placements.assign(ctx.tasks.size(), {});

  // ---- Incumbent seed (anytime behaviour) --------------------------------
  double incumbent = kInf;
  bool have_incumbent = false;
  ScheduleResult seed_schedule;
  if (options.seed_greedy) {
    ScheduleResult greedy =
        previous != nullptr
            ? reschedule_pinned(workload, config, *previous, usable, headroom)
            : schedule_zero_jitter(workload, config);
    if (greedy.feasible) {
      incumbent = greedy.comm_cost;  // nominal knobs: no penalty
      have_incumbent = true;
      seed_schedule = std::move(greedy);
    }
  }

  // ---- Best-first search -------------------------------------------------
  std::priority_queue<Node, std::vector<Node>, NodeOrder> frontier;
  std::uint64_t seq = 0;
  {
    Node root_node;
    root_node.bound = node_bound(ctx, ctx.root);
    root_node.seq = seq++;
    frontier.push(std::move(root_node));
  }
  std::vector<std::uint16_t> best_path;
  bool best_from_search = false;
  std::size_t expanded = 0;
  bool budget_exhausted = false;

  while (!frontier.empty()) {
    if (expanded >= options.max_nodes) {
      budget_exhausted = true;
      break;
    }
    const Node node = frontier.top();
    frontier.pop();
    ++expanded;
    if (have_incumbent && node.bound >= incumbent - kEps) {
      // Best-first: every remaining node is bounded at least this high, so
      // the incumbent is optimal (within tolerance).
      break;
    }
    const State state = replay_path(ctx, node.path);
    const std::size_t code_limit =
        state.in_variant ? ctx.bound_servers.size() + state.anon_groups.size() +
                               1
                         : ctx.tasks[state.task].variants.size();
    for (std::size_t code = 0; code < code_limit; ++code) {
      State child = state;
      if (!apply_decision(ctx, child, static_cast<std::uint16_t>(code))) {
        continue;
      }
      std::vector<std::uint16_t> child_path = node.path;
      child_path.push_back(static_cast<std::uint16_t>(code));
      if (child.task == ctx.tasks.size()) {
        // Leaves are evaluated at generation, never queued: this is what
        // makes the search anytime under the node budget.
        const double objective = leaf_objective(ctx, child);
        if (!have_incumbent || objective < incumbent - kEps) {
          incumbent = objective;
          have_incumbent = true;
          best_path = std::move(child_path);
          best_from_search = true;
        }
        continue;
      }
      // max() keeps bounds monotone along a path, tightening the frontier
      // minimum reported on budget exhaustion; still admissible.
      const double bound = std::max(node_bound(ctx, child), node.bound);
      if (have_incumbent && bound >= incumbent - kEps) continue;
      Node child_node;
      child_node.bound = bound;
      child_node.seq = seq++;
      child_node.path = std::move(child_path);
      frontier.push(std::move(child_node));
    }
  }

  PAMO_COUNT("sched.bnb_nodes", expanded);
  PAMO_COUNT("sched.bnb_budget_exhausted", budget_exhausted ? 1 : 0);

  // ---- Status assembly ---------------------------------------------------
  // The four-way split is the point of this engine: a drained frontier is a
  // *proof* (optimal or infeasible), an exhausted budget never is.
  BnbResult result;
  if (have_incumbent) {
    if (best_from_search) {
      result = build_result(ctx, config, best_path, incumbent);
    } else {
      result.schedule = std::move(seed_schedule);
      result.config = config;
      result.objective = incumbent;
    }
    if (budget_exhausted) {
      result.status = BnbStatus::kFeasibleBudget;
      result.lower_bound = std::min(frontier.top().bound, result.objective);
    } else {
      result.status = BnbStatus::kOptimal;
      result.lower_bound = result.objective;
    }
  } else if (budget_exhausted) {
    result.status = BnbStatus::kUnknown;
    result.config = config;
    result.objective = kInf;
    result.lower_bound = frontier.top().bound;
  } else {
    result = infeasible_result(config);
  }
  result.nodes_expanded = expanded;
  PAMO_ENSURES(result.status != BnbStatus::kInfeasible || !budget_exhausted,
               "budget exhaustion must never be reported as infeasibility");
  return result;
}

}  // namespace

const char* bnb_status_name(BnbStatus status) {
  switch (status) {
    case BnbStatus::kOptimal:
      return "optimal";
    case BnbStatus::kFeasibleBudget:
      return "feasible_budget";
    case BnbStatus::kInfeasible:
      return "infeasible";
    case BnbStatus::kUnknown:
      return "unknown";
  }
  PAMO_CHECK(false, "bnb_status_name requires a valid BnbStatus");
}

BnbResult schedule_bnb(const eva::Workload& workload,
                       const eva::JointConfig& config,
                       const BnbOptions& options) {
  PAMO_SPAN("sched.bnb");
  PAMO_COUNT("sched.bnb_calls", 1);
  return run_bnb(workload, config, options, /*previous=*/nullptr,
                 /*usable_in=*/nullptr, /*headroom=*/1.0);
}

BnbResult reschedule_bnb_pinned(const eva::Workload& workload,
                                const eva::JointConfig& config,
                                const ScheduleResult& previous,
                                const std::vector<bool>& server_usable,
                                double proc_headroom,
                                const BnbOptions& options) {
  PAMO_SPAN("sched.bnb_pinned");
  PAMO_COUNT("sched.bnb_pinned_calls", 1);
  PAMO_CHECK(previous.feasible,
             "pinned repair requires a feasible previous schedule");
  return run_bnb(workload, config, options, &previous, &server_usable,
                 proc_headroom);
}

}  // namespace pamo::sched
