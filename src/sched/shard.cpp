#include "sched/shard.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace pamo::sched {

namespace {

/// Knob-floor demand proxy of one stream: per-frame processing time at the
/// smallest resolution times the smallest frame rate — the same load
/// estimate the admission governor plans with.
double floor_demand(const eva::Workload& workload, std::size_t stream) {
  const auto res =
      static_cast<double>(workload.space.resolutions().front());
  const auto fps = static_cast<double>(workload.space.fps_knobs().front());
  return workload.clips[stream].proc_time(res) * fps;
}

}  // namespace

ShardPlan make_shard_plan(const eva::Workload& workload,
                          const ShardPlanOptions& options) {
  PAMO_SPAN("sched.make_shard_plan");
  const std::size_t m = workload.num_streams();
  const std::size_t n = workload.num_servers();
  PAMO_CHECK(m > 0 && n > 0, "shard plan over an empty workload");
  PAMO_CHECK(options.target_streams > 0, "target_streams must be positive");

  std::size_t shards =
      (m + options.target_streams - 1) / options.target_streams;
  shards = std::min({shards, m, n});
  if (options.max_shards > 0) shards = std::min(shards, options.max_shards);
  shards = std::max<std::size_t>(shards, 1);

  // ---- Streams: LPT over the demand proxy. Ties break on the lower
  // ---- stream id, so the packing is a pure function of the workload.
  std::vector<double> demand(m);
  for (std::size_t i = 0; i < m; ++i) demand[i] = floor_demand(workload, i);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demand[a] > demand[b];
                   });

  ShardPlan plan;
  plan.stream_ids.resize(shards);
  plan.server_ids.resize(shards);
  std::vector<double> shard_load(shards, 0.0);
  for (const std::size_t stream : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    plan.stream_ids[best].push_back(stream);
    shard_load[best] += demand[stream];
  }
  for (auto& ids : plan.stream_ids) std::sort(ids.begin(), ids.end());

  // ---- Servers: one guaranteed per shard, the rest by D'Hondt over the
  // ---- shard loads (highest load-per-allocated-server next; ties to the
  // ---- lower shard id).
  std::vector<std::size_t> quota(shards, 1);
  for (std::size_t extra = shards; extra < n; ++extra) {
    std::size_t best = 0;
    double best_score = shard_load[0] / static_cast<double>(quota[0] + 1);
    for (std::size_t s = 1; s < shards; ++s) {
      const double score =
          shard_load[s] / static_cast<double>(quota[s] + 1);
      if (score > best_score) {
        best = s;
        best_score = score;
      }
    }
    ++quota[best];
  }

  // Deal servers in descending-uplink order to the shard with the largest
  // unfilled quota, so the fattest uplinks spread across shards.
  std::vector<std::size_t> server_order(n);
  std::iota(server_order.begin(), server_order.end(), 0);
  std::stable_sort(server_order.begin(), server_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return workload.uplink_mbps[a] > workload.uplink_mbps[b];
                   });
  for (const std::size_t server : server_order) {
    std::size_t best = 0;
    std::size_t best_deficit = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t deficit = quota[s] - plan.server_ids[s].size();
      if (deficit > best_deficit) {
        best = s;
        best_deficit = deficit;
      }
    }
    plan.server_ids[best].push_back(server);
  }
  for (auto& ids : plan.server_ids) std::sort(ids.begin(), ids.end());

  PAMO_GAUGE("sched.shard_count", shards);
  std::size_t streams_covered = 0;
  std::size_t servers_covered = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    PAMO_ENSURES(!plan.stream_ids[s].empty() && !plan.server_ids[s].empty(),
                 "every shard holds at least one stream and one server");
    streams_covered += plan.stream_ids[s].size();
    servers_covered += plan.server_ids[s].size();
  }
  PAMO_ENSURES(streams_covered == m && servers_covered == n,
               "the shard plan partitions every stream and server exactly "
               "once");
  return plan;
}

eva::Workload shard_workload(const eva::Workload& workload,
                             const ShardPlan& plan, std::size_t shard) {
  PAMO_CHECK(shard < plan.num_shards(), "shard index out of range");
  eva::Workload out;
  out.space = workload.space;
  out.clips.reserve(plan.stream_ids[shard].size());
  for (const std::size_t stream : plan.stream_ids[shard]) {
    PAMO_CHECK(stream < workload.num_streams(),
               "shard plan references a stream outside the workload");
    out.clips.push_back(workload.clips[stream]);
  }
  out.uplink_mbps.reserve(plan.server_ids[shard].size());
  for (const std::size_t server : plan.server_ids[shard]) {
    PAMO_CHECK(server < workload.num_servers(),
               "shard plan references a server outside the workload");
    out.uplink_mbps.push_back(workload.uplink_mbps[server]);
  }
  PAMO_ENSURES(out.num_streams() > 0 && out.num_servers() > 0,
               "a shard workload is never empty");
  return out;
}

ScheduleResult merge_shard_schedules(const ShardPlan& plan,
                                     const std::vector<ScheduleResult>& shards,
                                     std::size_t num_streams,
                                     std::size_t num_servers) {
  PAMO_CHECK(shards.size() == plan.num_shards(),
             "one schedule per plan shard");
  ScheduleResult merged;
  merged.feasible = !shards.empty();
  merged.uplink_per_parent.assign(num_streams, 0.0);
  merged.latency_per_parent.assign(num_streams, 0.0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ScheduleResult& shard = shards[s];
    if (!shard.feasible) {
      merged.feasible = false;
      continue;
    }
    const std::vector<std::size_t>& streams = plan.stream_ids[s];
    const std::vector<std::size_t>& servers = plan.server_ids[s];
    PAMO_CHECK(shard.assignment.size() == shard.streams.size() &&
                   shard.phase.size() == shard.streams.size(),
               "shard schedule is internally inconsistent");
    PAMO_CHECK(shard.uplink_per_parent.size() == streams.size() &&
                   shard.latency_per_parent.size() == streams.size(),
               "shard schedule does not match its shard workload");
    for (std::size_t k = 0; k < shard.streams.size(); ++k) {
      PeriodicStream global = shard.streams[k];
      PAMO_CHECK(global.parent < streams.size(),
                 "shard schedule references a parent outside the shard");
      PAMO_CHECK(shard.assignment[k] < servers.size(),
                 "shard schedule references a server outside the shard");
      global.parent = streams[global.parent];
      merged.streams.push_back(global);
      merged.assignment.push_back(servers[shard.assignment[k]]);
      merged.phase.push_back(shard.phase[k]);
    }
    for (std::size_t p = 0; p < streams.size(); ++p) {
      merged.uplink_per_parent[streams[p]] = shard.uplink_per_parent[p];
      merged.latency_per_parent[streams[p]] = shard.latency_per_parent[p];
    }
    merged.comm_cost += shard.comm_cost;
  }
  if (!merged.feasible) return ScheduleResult{};
  for (const std::size_t server : merged.assignment) {
    PAMO_CHECK(server < num_servers,
               "merged schedule references a server outside the fleet");
  }
  PAMO_ENSURES(merged.assignment.size() == merged.streams.size() &&
                   merged.phase.size() == merged.streams.size(),
               "merge yields a complete flat schedule");
  return merged;
}

}  // namespace pamo::sched
