// Anytime branch-and-bound placement engine with admissible bounds.
//
// Placement under Const1/Const2 is an assignment problem: each split
// stream must be assigned a server so that every server's co-scheduled
// set satisfies the Theorem-1 gcd condition, minimizing the same
// communication objective as Algorithm 1's line 20 (Σ θ_bit(r_i)/B_{q_i}).
// The paper concedes this is strongly NP-hard and ships a greedy
// heuristic; this module is the exact/anytime counterpart used to audit
// the greedy pass (bench/ext_placement_gap) and, optionally, as a fast
// exact repair path for small orphan sets after faults.
//
// Search design (best-first / A*):
//   * Groups under construction are *anonymous* — which server hosts a
//     group is decided by a rectangular Hungarian assignment, exactly at
//     leaves and as a relaxation bound at interior nodes — except for
//     *bound* groups pinned to a specific server by the repair entry
//     point, whose cost is committed incrementally as members join.
//   * The lower bound of a partial node is admissible by construction:
//     committed cost (exact) + the assignment relaxation of the current
//     anonymous groups over the free servers (any completion only grows
//     those groups and must still map them injectively) + every
//     still-unplaced stream billed at the fastest usable uplink.
//   * Expansion is best-first over that bound (ties: deeper first, then
//     insertion order), so the first leaf popped — or the first interior
//     node popped whose bound cannot beat the incumbent — proves
//     optimality. Feasibility and cost are evaluated incrementally per
//     node (gcd/proc-sum per group, one term per placement).
//   * The search is *anytime*: the incumbent is seeded from Algorithm 1
//     when it is feasible and improved whenever a cheaper leaf is
//     generated, so exhausting the deterministic node budget degrades to
//     best-found-so-far with an explicit status instead of an answer
//     that conflates "unknown" with "infeasible".
//
// The optional knob dimension makes the search joint over
// (stream → server, knob): per-parent alternative configurations are
// explored with a lexicographic degrade penalty, so the solver prefers
// nominal knobs and only steps down when placement is otherwise
// infeasible (or the caller prices degradation cheaply on purpose).
#pragma once

#include <cstdint>
#include <vector>

#include "eva/workload.hpp"
#include "sched/scheduler.hpp"

namespace pamo::sched {

/// Outcome of a budgeted branch-and-bound (or exact) search. The four
/// states keep "we ran out of budget" distinguishable from "there is no
/// solution" — conflating them is precisely the bug class this engine
/// audits against.
enum class BnbStatus {
  kOptimal,         // proven optimal solution returned
  kFeasibleBudget,  // feasible best-found returned; optimality unproven
  kInfeasible,      // proven: no feasible assignment exists
  kUnknown,         // node budget exhausted before any feasible solution
};

/// Human-readable status label (for benches, logs, and repair actions).
const char* bnb_status_name(BnbStatus status);

struct BnbOptions {
  /// Deterministic search budget: the maximum number of node expansions
  /// (priority-queue pops). Acts as the "deadline" — deterministic by
  /// construction, unlike wall-clock, so same inputs give same outputs.
  std::size_t max_nodes = 200'000;
  /// Seed the incumbent with Algorithm 1's schedule (reschedule_pinned
  /// for the pinned entry point) when it is feasible. Keeps the search
  /// anytime — a budget breach then still returns a feasible schedule —
  /// and tightens pruning from the first node on.
  bool seed_greedy = true;
  /// Use the rectangular-Hungarian assignment relaxation in the interior
  /// lower bound. Off falls back to the weaker (still admissible)
  /// fastest-uplink bound — exposed for the bound-quality property tests
  /// and the audit bench's bound ablation.
  bool assignment_bound = true;
  /// Optional per-parent knob alternatives (the joint "(server, knob)"
  /// search). alternatives[p] lists configurations tried for parent p in
  /// addition to the nominal config[p]; entry k costs an extra
  /// degrade_penalty * (k + 1) in the objective, so nominal knobs win
  /// unless placement needs the headroom. Empty (the default) searches
  /// placement only. The pinned entry point rejects alternatives for
  /// parents with surviving (pinned) sub-streams — their knobs are fixed
  /// by the schedule being repaired.
  std::vector<std::vector<eva::StreamConfig>> knob_alternatives;
  /// Objective charge per knob-alternative step (seconds of communication
  /// latency). Large values make knob degradation lexicographically last.
  double degrade_penalty = 1.0;
};

struct BnbResult {
  BnbStatus status = BnbStatus::kUnknown;
  /// Complete zero-jitter schedule; feasible exactly when status is
  /// kOptimal or kFeasibleBudget (default-constructed otherwise).
  ScheduleResult schedule;
  /// Knob configuration of `schedule` — equal to the input config unless
  /// knob alternatives were enabled and the solver stepped a parent down.
  eva::JointConfig config;
  /// Objective of `schedule`: comm cost plus degrade penalties. Equals
  /// schedule.comm_cost when no knob alternative was taken.
  double objective = 0.0;
  /// Admissible lower bound on the optimal objective: equal to
  /// `objective` when kOptimal, the best unexplored node's bound when the
  /// budget ran out (objective - lower_bound is then a certified
  /// optimality gap), +infinity when kInfeasible.
  double lower_bound = 0.0;
  /// Node expansions spent (<= options.max_nodes).
  std::size_t nodes_expanded = 0;
};

/// Branch-and-bound placement for the whole workload at the given
/// configuration — the exact/anytime counterpart of schedule_zero_jitter,
/// searching the full Const2 space (Theorem-1 gcd condition), which is
/// strictly broader than Algorithm 1's Theorem-3 grouping.
BnbResult schedule_bnb(const eva::Workload& workload,
                       const eva::JointConfig& config,
                       const BnbOptions& options = {});

/// Branch-and-bound repair: streams whose previous server is still usable
/// stay pinned to it (their groups re-validated under `proc_headroom`,
/// like reschedule_pinned); orphans are re-placed *optimally* over the
/// usable servers. kInfeasible here proves that no pinned repair exists —
/// callers should then fall back to a full re-pack; kUnknown (budget) is
/// NOT evidence of infeasibility and callers should fall back to the
/// greedy reschedule_pinned instead.
BnbResult reschedule_bnb_pinned(const eva::Workload& workload,
                                const eva::JointConfig& config,
                                const ScheduleResult& previous,
                                const std::vector<bool>& server_usable,
                                double proc_headroom = 1.0,
                                const BnbOptions& options = {});

}  // namespace pamo::sched
