#include "sched/hungarian.hpp"

#include <limits>

#include "common/error.hpp"

namespace pamo::sched {

AssignmentResult solve_assignment(const la::Matrix& cost) {
  const std::size_t n = cost.rows();
  const std::size_t m = cost.cols();
  PAMO_CHECK(n >= 1, "assignment requires at least one row");
  PAMO_CHECK(n <= m, "assignment requires rows <= cols");

  constexpr double kInf = std::numeric_limits<double>::max() / 4;

  // 1-indexed potentials over rows (u) and columns (v); p[j] = row matched
  // to column j (0 = none). Classic shortest-augmenting-path formulation.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.col_of.assign(n, 0);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) result.col_of[p[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    result.total_cost += cost(r, result.col_of[r]);
  }
  return result;
}

}  // namespace pamo::sched
