#include "sched/hungarian.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace pamo::sched {

AssignmentResult solve_assignment(const la::Matrix& cost) {
  const std::size_t n = cost.rows();
  const std::size_t m = cost.cols();
  PAMO_CHECK(n <= m, "assignment requires rows <= cols");
  AssignmentResult result;
  if (n == 0) {
    // Nothing to assign: the empty matching with an all-zero certificate.
    // The B&B bound asks this question whenever a search node has no open
    // anonymous group, so the empty shape is a contract, not an error.
    result.col_potential.assign(m, 0.0);
    return result;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      PAMO_CHECK(std::isfinite(cost(i, j)), "assignment costs must be finite");
    }
  }

  constexpr double kInf = std::numeric_limits<double>::max() / 4;

  // 1-indexed potentials over rows (u) and columns (v); p[j] = row matched
  // to column j (0 = none). Classic shortest-augmenting-path formulation.
  // Ties in the Dijkstra step resolve to the lowest column index (the scan
  // below only replaces the pivot on a strict improvement), which is what
  // makes tied costs deterministic.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.col_of.assign(n, 0);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) result.col_of[p[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    result.total_cost += cost(r, result.col_of[r]);
  }
  // Strip the 1-indexing off the dual certificate. The virtual column 0
  // accumulates the potential of each augmenting row's start, so only
  // columns 1..m are part of the certificate.
  result.row_potential.assign(u.begin() + 1, u.end());
  result.col_potential.assign(v.begin() + 1, v.end());
  PAMO_ENSURES(result.col_of.size() == n &&
                   result.row_potential.size() == n &&
                   result.col_potential.size() == m,
               "assignment result vectors must align with the cost matrix");
  return result;
}

}  // namespace pamo::sched
