// Const1/Const2 (Eqs. 6–7) and the Theorem 1–3 predicates as checkable
// code. These are used by Algorithm 1, by the property tests that verify
// the paper's proofs against the discrete-event simulator, and by the
// jitter ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ticks.hpp"
#include "sched/stream.hpp"

namespace pamo::sched {

/// Const1 (Eq. 6): Σ_{i: q_i = j} p_i · s_i <= 1 for every server j.
/// `assignment[i]` is the server index of streams[i]; `num_servers` = N.
bool const1_holds(const std::vector<PeriodicStream>& streams,
                  const std::vector<std::size_t>& assignment,
                  std::size_t num_servers, const TickClock& clock);

/// Const2 (Eq. 7): Σ_{i: q_i = j} p_i <= gcd({T_i : q_i = j}) per server.
bool const2_holds(const std::vector<PeriodicStream>& streams,
                  const std::vector<std::size_t>& assignment,
                  std::size_t num_servers, const TickClock& clock);

/// Theorem 1 condition for one co-scheduled set: Σ p_i <= gcd(T_1..T_K).
bool theorem1_condition(const std::vector<PeriodicStream>& group,
                        const TickClock& clock);

/// Theorem 3 conditions for one co-scheduled set:
/// (a) every T_i is an integer multiple of T_min, and (b) Σ p_i <= T_min.
bool theorem3_condition(const std::vector<PeriodicStream>& group,
                        const TickClock& clock);

/// gcd of the group's periods, in ticks.
std::uint64_t group_period_gcd(const std::vector<PeriodicStream>& group);

}  // namespace pamo::sched
