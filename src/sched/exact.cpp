#include "sched/exact.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "sched/constraints.hpp"
#include "sched/hungarian.hpp"

namespace pamo::sched {

namespace {

struct GroupState {
  std::uint64_t gcd_ticks = 0;
  double proc_sum = 0.0;
  double bits_sum = 0.0;
  std::vector<std::size_t> members;
};

struct Search {
  const eva::Workload* workload = nullptr;
  const std::vector<PeriodicStream>* streams = nullptr;
  const TickClock* clock = nullptr;
  std::size_t num_servers = 0;
  std::size_t max_nodes = 0;
  bool feasibility_only = false;

  std::size_t nodes = 0;
  bool budget_exhausted = false;
  double best_cost = 1e300;
  std::vector<std::size_t> best_assignment;  // server index per stream
  bool found = false;

  std::vector<GroupState> groups;
  std::vector<std::size_t> assignment;
  double max_uplink = 0.0;

  /// Minimum possible communication cost for the current partial state:
  /// every frame's bits over the fastest uplink.
  double cost_lower_bound(std::size_t next_stream) const {
    double bits = 0.0;
    for (const auto& g : groups) bits += g.bits_sum;
    for (std::size_t i = next_stream; i < streams->size(); ++i) {
      bits += (*streams)[i].bits_per_frame;
    }
    return bits / (max_uplink * 1e6);
  }

  void leaf() {
    if (feasibility_only) {
      found = true;
      best_assignment = assignment;
      return;
    }
    // Optimal group→server mapping for this grouping.
    std::vector<std::size_t> active;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (!groups[g].members.empty()) active.push_back(g);
    }
    la::Matrix cost(active.size(), num_servers);
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t server = 0; server < num_servers; ++server) {
        cost(a, server) = groups[active[a]].bits_sum /
                          (workload->uplink_mbps[server] * 1e6);
      }
    }
    const AssignmentResult mapping = solve_assignment(cost);
    if (mapping.total_cost < best_cost) {
      best_cost = mapping.total_cost;
      best_assignment.assign(streams->size(), 0);
      for (std::size_t a = 0; a < active.size(); ++a) {
        for (std::size_t member : groups[active[a]].members) {
          best_assignment[member] = mapping.col_of[a];
        }
      }
      found = true;
    }
  }

  void recurse(std::size_t stream_idx) {
    if (budget_exhausted || (feasibility_only && found)) return;
    if (++nodes > max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (stream_idx == streams->size()) {
      leaf();
      return;
    }
    if (!feasibility_only &&
        cost_lower_bound(stream_idx) >= best_cost - 1e-15) {
      return;  // cannot beat the incumbent
    }
    const auto& stream = (*streams)[stream_idx];
    const std::size_t open_groups = groups.size();

    // Try joining each existing group.
    for (std::size_t g = 0; g < open_groups; ++g) {
      const std::uint64_t new_gcd =
          std::gcd(groups[g].gcd_ticks, stream.period_ticks);
      const double new_proc = groups[g].proc_sum + stream.proc_time;
      if (new_proc > clock->to_seconds(new_gcd) + 1e-12) continue;
      const GroupState saved = groups[g];
      groups[g].gcd_ticks = new_gcd;
      groups[g].proc_sum = new_proc;
      groups[g].bits_sum += stream.bits_per_frame;
      groups[g].members.push_back(stream_idx);
      assignment[stream_idx] = g;
      recurse(stream_idx + 1);
      groups[g] = saved;
    }
    // Open a new group (symmetry-broken: only the next index).
    if (open_groups < num_servers) {
      groups.push_back({stream.period_ticks, stream.proc_time,
                        stream.bits_per_frame, {stream_idx}});
      assignment[stream_idx] = open_groups;
      recurse(stream_idx + 1);
      groups.pop_back();
    }
  }
};

Search run_search(const eva::Workload& workload, const eva::JointConfig& config,
                  const ExactOptions& options, bool feasibility_only,
                  std::vector<PeriodicStream>& streams_out) {
  streams_out = split_streams(workload, config);
  // Largest processing times first: fails fast on tight instances.
  std::sort(streams_out.begin(), streams_out.end(),
            [](const PeriodicStream& a, const PeriodicStream& b) {
              return a.proc_time > b.proc_time;
            });
  Search search;
  search.workload = &workload;
  search.streams = &streams_out;
  search.clock = &workload.space.clock();
  search.num_servers = workload.num_servers();
  search.max_nodes = options.max_nodes;
  search.feasibility_only = feasibility_only;
  search.assignment.assign(streams_out.size(), 0);
  search.max_uplink = *std::max_element(workload.uplink_mbps.begin(),
                                        workload.uplink_mbps.end());
  search.recurse(0);
  return search;
}

}  // namespace

const char* feasibility_name(Feasibility feasibility) {
  switch (feasibility) {
    case Feasibility::kFeasible:
      return "feasible";
    case Feasibility::kInfeasible:
      return "infeasible";
    case Feasibility::kUnknown:
      return "unknown";
  }
  return "invalid";
}

Feasibility exists_zero_jitter_schedule(const eva::Workload& workload,
                                        const eva::JointConfig& config,
                                        const ExactOptions& options) {
  std::vector<PeriodicStream> streams;
  const Search search = run_search(workload, config, options,
                                   /*feasibility_only=*/true, streams);
  // The feasibility search stops at its first solution, so `found` is a
  // proof even when the budget ran out afterwards; `!found` is only a
  // proof when the space was fully explored.
  if (search.found) return Feasibility::kFeasible;
  if (search.budget_exhausted) return Feasibility::kUnknown;
  return Feasibility::kInfeasible;
}

ExactResult schedule_exact(const eva::Workload& workload,
                           const eva::JointConfig& config,
                           const ExactOptions& options) {
  std::vector<PeriodicStream> streams;
  const Search search = run_search(workload, config, options,
                                   /*feasibility_only=*/false, streams);
  ExactResult result;
  if (!search.found) {
    // Budget exhaustion is "we don't know", not "there is no schedule" —
    // the two used to collapse into one nullopt, which let ablations count
    // hard instances as infeasible.
    result.status =
        search.budget_exhausted ? BnbStatus::kUnknown : BnbStatus::kInfeasible;
  } else {
    result.status = search.budget_exhausted ? BnbStatus::kFeasibleBudget
                                            : BnbStatus::kOptimal;
    // An exact grouping can split a parent across servers, which the
    // per-parent fixed-assignment helper cannot express — assemble the
    // zero-jitter result (Theorem-1 stagger + bookkeeping) directly.
    result.schedule = assemble_zero_jitter(workload, std::move(streams),
                                           search.best_assignment);
  }
  PAMO_ENSURES(result.schedule.has_value() ==
                   (result.status == BnbStatus::kOptimal ||
                    result.status == BnbStatus::kFeasibleBudget),
               "a schedule is returned exactly when the status is feasible");
  return result;
}

}  // namespace pamo::sched
