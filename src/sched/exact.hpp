// Exact zero-jitter grouping by branch-and-bound.
//
// The paper notes that non-preemptive periodic scheduling is strongly
// NP-hard and is solved exactly in the literature with ILP/CP/SMT
// formulations (§6); Algorithm 1 is its fast heuristic. This module
// provides the exact reference for small instances: search over all
// assignments of streams to at most N groups subject to Const2
// (Theorem 1's gcd condition per group), minimizing the same communication
// objective as Algorithm 1's line 20. Used by tests and the ablation bench
// to quantify the heuristic's feasibility and cost gap.
#pragma once

#include <cstdint>
#include <optional>

#include "sched/scheduler.hpp"

namespace pamo::sched {

struct ExactOptions {
  /// Safety valve: give up after this many search nodes (the instance is
  /// then treated as "unknown" — nullopt).
  std::size_t max_nodes = 2'000'000;
};

/// Exact minimum-communication-cost zero-jitter schedule, or nullopt if no
/// feasible grouping exists (or the node budget is exhausted).
/// `result->feasible` is always true on a returned value.
std::optional<ScheduleResult> schedule_exact(const eva::Workload& workload,
                                             const eva::JointConfig& config,
                                             const ExactOptions& options = {});

/// Exact feasibility test only (cheaper: stops at the first solution).
/// Returns nullopt when the node budget is exhausted before an answer.
std::optional<bool> exists_zero_jitter_schedule(
    const eva::Workload& workload, const eva::JointConfig& config,
    const ExactOptions& options = {});

}  // namespace pamo::sched
