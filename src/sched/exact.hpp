// Exact zero-jitter grouping by exhaustive depth-first search.
//
// The paper notes that non-preemptive periodic scheduling is strongly
// NP-hard and is solved exactly in the literature with ILP/CP/SMT
// formulations (§6); Algorithm 1 is its fast heuristic. This module
// provides the exact reference for small instances: search over all
// assignments of streams to at most N groups subject to Const2
// (Theorem 1's gcd condition per group), minimizing the same communication
// objective as Algorithm 1's line 20. Used by tests and the ablation bench
// to quantify the heuristic's feasibility and cost gap; sched/bnb.hpp is
// the best-first engine that scales further and must agree with this one
// on proven-optimal instances.
//
// The search runs under a node budget, and the result type keeps budget
// exhaustion distinguishable from proven infeasibility (BnbStatus — shared
// with the branch-and-bound engine). Earlier revisions returned nullopt
// for both, which let "we gave up" masquerade as "no schedule exists" in
// feasibility ablations; that conflation is now unrepresentable.
#pragma once

#include <cstdint>
#include <optional>

#include "sched/bnb.hpp"
#include "sched/scheduler.hpp"

namespace pamo::sched {

struct ExactOptions {
  /// Safety valve: give up after this many search nodes. Exhausting the
  /// budget yields kFeasibleBudget (best found so far, optimality
  /// unproven) or kUnknown (nothing found, infeasibility unproven) —
  /// never kInfeasible.
  std::size_t max_nodes = 2'000'000;
};

/// Result of the exact optimization search. `schedule` is engaged exactly
/// when status is kOptimal or kFeasibleBudget, and is then a feasible
/// zero-jitter schedule (proven minimum-cost only under kOptimal).
struct ExactResult {
  BnbStatus status = BnbStatus::kUnknown;
  std::optional<ScheduleResult> schedule;
};

/// Tri-state feasibility answer: kUnknown means the node budget ran out
/// before either a schedule was found or the space was exhausted — it is
/// NOT evidence of infeasibility.
enum class Feasibility {
  kFeasible,
  kInfeasible,
  kUnknown,
};

/// Human-readable label (for benches and logs).
const char* feasibility_name(Feasibility feasibility);

/// Exact minimum-communication-cost zero-jitter schedule under a node
/// budget. See ExactResult for the status/schedule contract.
ExactResult schedule_exact(const eva::Workload& workload,
                           const eva::JointConfig& config,
                           const ExactOptions& options = {});

/// Exact feasibility test only (cheaper: stops at the first solution).
Feasibility exists_zero_jitter_schedule(const eva::Workload& workload,
                                        const eva::JointConfig& config,
                                        const ExactOptions& options = {});

}  // namespace pamo::sched
