#include "sched/constraints.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pamo::sched {

namespace {

std::vector<std::vector<PeriodicStream>> group_by_server(
    const std::vector<PeriodicStream>& streams,
    const std::vector<std::size_t>& assignment, std::size_t num_servers) {
  PAMO_CHECK(streams.size() == assignment.size(),
             "assignment size does not match stream count");
  std::vector<std::vector<PeriodicStream>> groups(num_servers);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    PAMO_CHECK(assignment[i] < num_servers, "server index out of range");
    groups[assignment[i]].push_back(streams[i]);
  }
  return groups;
}

}  // namespace

std::uint64_t group_period_gcd(const std::vector<PeriodicStream>& group) {
  PAMO_CHECK(!group.empty(), "gcd of an empty group");
  std::vector<std::uint64_t> periods;
  periods.reserve(group.size());
  for (const auto& s : group) periods.push_back(s.period_ticks);
  return gcd_of(periods);
}

bool const1_holds(const std::vector<PeriodicStream>& streams,
                  const std::vector<std::size_t>& assignment,
                  std::size_t num_servers, const TickClock& clock) {
  for (const auto& group : group_by_server(streams, assignment, num_servers)) {
    double utilization = 0.0;
    for (const auto& s : group) {
      utilization += s.proc_time / clock.to_seconds(s.period_ticks);
    }
    if (utilization > 1.0 + 1e-12) return false;
  }
  return true;
}

bool const2_holds(const std::vector<PeriodicStream>& streams,
                  const std::vector<std::size_t>& assignment,
                  std::size_t num_servers, const TickClock& clock) {
  for (const auto& group : group_by_server(streams, assignment, num_servers)) {
    if (group.empty()) continue;
    if (!theorem1_condition(group, clock)) return false;
  }
  return true;
}

bool theorem1_condition(const std::vector<PeriodicStream>& group,
                        const TickClock& clock) {
  if (group.empty()) return true;
  double total_proc = 0.0;
  for (const auto& s : group) total_proc += s.proc_time;
  return total_proc <= clock.to_seconds(group_period_gcd(group)) + 1e-12;
}

bool theorem3_condition(const std::vector<PeriodicStream>& group,
                        const TickClock& clock) {
  if (group.empty()) return true;
  std::uint64_t t_min = group.front().period_ticks;
  for (const auto& s : group) t_min = std::min(t_min, s.period_ticks);
  double total_proc = 0.0;
  for (const auto& s : group) {
    if (s.period_ticks % t_min != 0) return false;  // condition (a)
    total_proc += s.proc_time;
  }
  return total_proc <= clock.to_seconds(t_min) + 1e-12;  // condition (b)
}

}  // namespace pamo::sched
