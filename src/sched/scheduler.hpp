// Scheduling decisions: Algorithm 1 (group-based zero-jitter heuristic)
// and a naive First-Fit scheduler used by baselines and ablations.
//
// Given a joint configuration, the zero-jitter scheduler:
//   1. splits high-rate streams (§3),
//   2. orders streams by period, then by divisor-count priority (lines 1–3),
//   3. packs streams into at most N groups so every group satisfies the
//      Theorem 3 conditions — hence Const2, hence Const1 and zero delay
//      jitter (lines 4–19),
//   4. maps groups to servers with the Hungarian algorithm, minimizing the
//      total communication latency Σ θ_bit(r_i)/B_{q_i} (line 20),
//   5. staggers per-stream start offsets inside each group as in the proof
//      of Theorem 1, so frames never queue behind each other.
#pragma once

#include <vector>

#include "eva/workload.hpp"
#include "sched/stream.hpp"

namespace pamo::sched {

struct ScheduleResult {
  bool feasible = false;
  std::vector<PeriodicStream> streams;   // split streams (scheduler's view)
  std::vector<std::size_t> assignment;   // server index per split stream
  std::vector<double> phase;             // start offset (s) per split stream
  /// Mean uplink (Mbps) over each *parent* stream's sub-streams.
  std::vector<double> uplink_per_parent;
  /// Jitter-free e2e latency per parent stream: p_i + θ_bit(r_i)/B (Eq. 5).
  std::vector<double> latency_per_parent;
  /// Total communication latency Σ θ_bit(r_i)/B_{q_i} (Algorithm 1's
  /// assignment objective).
  double comm_cost = 0.0;
};

/// Algorithm 1 + Hungarian assignment. `result.feasible` is false when no
/// grouping satisfying Const2 exists for this configuration.
ScheduleResult schedule_zero_jitter(const eva::Workload& workload,
                                    const eva::JointConfig& config);

/// Algorithm 1 restricted to the servers marked usable (crashed servers
/// are excluded from grouping and assignment). `proc_headroom` >= 1
/// inflates processing times during group packing and phase staggering —
/// slack for servers known to be running slow (stragglers) so the packed
/// groups stay contention-free at the degraded speed.
ScheduleResult schedule_zero_jitter_masked(
    const eva::Workload& workload, const eva::JointConfig& config,
    const std::vector<bool>& server_usable, double proc_headroom = 1.0);

/// Fast-repair entry point: re-place only the streams orphaned by
/// unusable servers. Streams whose previous server is still usable stay
/// *pinned* to it (their groups are re-validated under `proc_headroom`);
/// orphans are packed into the surviving groups under the Theorem 3
/// conditions. No Hungarian re-assignment — pinned groups must not move —
/// so repair cost is O(M·N) instead of a full re-optimization.
/// `previous` must be a schedule of the same (workload, config) split.
/// Returns feasible = false when the orphans cannot be absorbed (callers
/// then fall back to schedule_zero_jitter_masked or degrade knobs) — and
/// also when *no* server survives, since at this repair entry point an
/// empty fleet is an environment state rather than a caller bug.
ScheduleResult reschedule_pinned(const eva::Workload& workload,
                                 const eva::JointConfig& config,
                                 const ScheduleResult& previous,
                                 const std::vector<bool>& server_usable,
                                 double proc_headroom = 1.0);

/// First-Fit on Const1 only (utilization <= 1), ignoring Const2 — the
/// placement rule of JCAB and the ablation contrast for Figure 4.
ScheduleResult schedule_first_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config);

/// Worst-Fit on Const1: each stream goes to the least-utilized server that
/// still fits. Balances load better than First-Fit but, like it, ignores
/// Const2 — an ablation point between First-Fit and Algorithm 1.
ScheduleResult schedule_worst_fit(const eva::Workload& workload,
                                  const eva::JointConfig& config);

/// Build a complete zero-jitter ScheduleResult from an explicit split-
/// stream list and per-split-stream server assignment: Theorem-1 phase
/// staggering (transfer-compensated, optionally headroom-inflated), the
/// per-parent uplink/latency bookkeeping, and the communication cost —
/// exactly the construction Algorithm 1 applies after its own grouping.
/// The assignment must already satisfy Const2 per server (asserted); the
/// exact and branch-and-bound searches use this to turn a raw assignment
/// into a result consistent with the rest of the library.
ScheduleResult assemble_zero_jitter(const eva::Workload& workload,
                                    std::vector<PeriodicStream> streams,
                                    std::vector<std::size_t> assignment,
                                    double proc_headroom = 1.0);

/// Build a schedule from an explicit per-parent server assignment (every
/// sub-stream inherits its parent's server; phases are not staggered).
/// Used by baselines that make their own placement decisions. The result
/// is marked feasible unconditionally — capacity violations show up as
/// queueing delay in the simulator, as they would on real hardware.
ScheduleResult schedule_fixed_assignment(
    const eva::Workload& workload, const eva::JointConfig& config,
    const std::vector<std::size_t>& server_per_parent);

}  // namespace pamo::sched
