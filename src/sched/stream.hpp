// Periodic stream representation and high-rate stream splitting (§3).
//
// A video stream at fps s with per-frame processing time p is *high-rate*
// when s·p > 1: a single server cannot finish one frame before the next
// arrives. The paper splits such a stream by periodic sampling into
// K = ⌈s·p⌉ interleaved sub-streams, each with period K·T, so that every
// resulting stream satisfies p ≤ T and can be scheduled contention-free.
#pragma once

#include <cstdint>
#include <vector>

#include "eva/workload.hpp"

namespace pamo::sched {

/// One periodic (sub-)stream handed to the scheduling algorithm:
/// τ_i = {T_i, r_i, p_i} plus bookkeeping to map back to the video source.
struct PeriodicStream {
  std::size_t parent = 0;         // index of the original video stream
  std::uint64_t period_ticks = 0; // T_i in TickClock ticks
  double proc_time = 0.0;         // p_i (seconds per frame)
  double bits_per_frame = 0.0;    // θ_bit(r_i)
  std::uint32_t resolution = 0;   // r_i
};

/// Expand a joint configuration into periodic streams, splitting high-rate
/// streams. The result has M = M' - M* + Σ⌈s_i p_i⌉ entries; every entry
/// satisfies proc_time <= period (no self-contention).
std::vector<PeriodicStream> split_streams(const eva::Workload& workload,
                                          const eva::JointConfig& config);

}  // namespace pamo::sched
