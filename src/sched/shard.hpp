// Fleet-scale sharding: the global benefit allocator that partitions a
// large workload into server shards small enough for per-shard BO.
//
// Algorithm 1 and the BO loop above it are sized for tens of streams; at
// fleet scale (10k streams over 1k servers) the flat optimization is out
// of reach — the candidate space is [0,1]^{2M} and every outcome-GP table
// row costs a schedule. The allocator cuts the problem first: streams are
// packed into shards by knob-floor demand (LPT), servers are apportioned
// to shards by demand share (D'Hondt), and each shard is then optimized
// independently. Both passes are pure functions of the workload — no RNG,
// no wall clock — so the plan is bit-identical at any worker count.
#pragma once

#include <cstddef>
#include <vector>

#include "eva/workload.hpp"
#include "sched/scheduler.hpp"

namespace pamo::sched {

struct ShardPlanOptions {
  /// Streams the allocator aims to place in one shard. The shard count is
  /// ceil(M / target_streams), clamped so every shard gets >= 1 server.
  std::size_t target_streams = 12;
  /// Hard cap on the number of shards; 0 = no cap beyond the server count.
  std::size_t max_shards = 0;
};

/// The partition: shard s optimizes streams `stream_ids[s]` on servers
/// `server_ids[s]`, both in ascending global-id order. Every stream and
/// every server appears in exactly one shard; no shard is empty.
struct ShardPlan {
  std::vector<std::vector<std::size_t>> stream_ids;
  std::vector<std::vector<std::size_t>> server_ids;

  [[nodiscard]] std::size_t num_shards() const { return stream_ids.size(); }
};

/// Deterministically partition `workload` into shards. Stream packing is
/// LPT (longest processing time first) over the knob-floor demand proxy
/// proc_time(r_min)·s_min — the admission governor's load estimate — so
/// shard loads balance without fixing knob decisions the per-shard BO has
/// not made yet. Servers go to shards by D'Hondt apportionment over shard
/// demand (every shard gets at least one), dealt in descending-uplink
/// order so fat uplinks spread across shards instead of clustering.
ShardPlan make_shard_plan(const eva::Workload& workload,
                          const ShardPlanOptions& options);

/// Materialize shard `shard`'s private workload: its clips and uplinks in
/// ascending global-id order, the config space shared.
eva::Workload shard_workload(const eva::Workload& workload,
                             const ShardPlan& plan, std::size_t shard);

/// Stitch per-shard schedules back into the flat id space: split-stream
/// parents and server assignments are mapped through the plan, per-parent
/// uplink/latency vectors scatter into global positions, comm_cost sums.
/// Feasible iff every shard is feasible. `shards` must have one schedule
/// per plan shard, each over the matching shard_workload.
ScheduleResult merge_shard_schedules(const ShardPlan& plan,
                                     const std::vector<ScheduleResult>& shards,
                                     std::size_t num_streams,
                                     std::size_t num_servers);

}  // namespace pamo::sched
