// GpBackend::kInducing — the Deterministic Training Conditional (DTC)
// inducing-point approximation behind the GpRegressor interface.
//
// The exact GP factorizes the n×n training covariance (O(n³)); at fleet
// scale n grows with the stream count and that ceiling breaks. DTC keeps
// an m-point inducing set Z (a strided subset of the training rows) and
// works with
//
//   B = Kmm + Kmn D⁻¹ Knm,   D = σ²·diag(noise_scale)
//   mean(x*) = k*ₘ B⁻¹ Kmn D⁻¹ y
//   cov(X*)  = K** − K*ₘ Kmm⁻¹ Kₘ* + K*ₘ B⁻¹ Kₘ*
//
// so every solve is m-bounded: O(m²n) from scratch, O(m² + mn) per
// incremental update (a rank-one cholupdate of B per new row plus a
// re-solve of the m-vector b against the re-standardized targets). With
// m == n, DTC coincides analytically with the exact posterior — the
// equivalence anchor tests/gp/test_gp_sparse.cpp pins numerically.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "gp/gp_regressor.hpp"
#include "obs/obs.hpp"

namespace pamo::gp {

namespace {

/// The exact backend's jitter ladder, reused so a near-singular inducing
/// covariance degrades to a smoother posterior instead of a dead learner.
constexpr double kJitterLadder[] = {1e-4, 1e-2, 1.0};
constexpr std::size_t kLadderAttempts = 3;

la::Cholesky factor_with_ladder(const la::Matrix& a,
                                GpFitDiagnostics& diagnostics) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      la::Cholesky chol(a, kJitterLadder[attempt]);
      diagnostics.fit_jitter = std::max(diagnostics.fit_jitter, chol.jitter());
      return chol;
    } catch (const Error&) {
      if (attempt + 1 >= kLadderAttempts) throw;
      ++diagnostics.cholesky_recoveries;
    }
  }
}

}  // namespace

void GpRegressor::solve_sparse() {
  PAMO_SPAN("gp.solve_sparse");
  PAMO_COUNT("gp.sparse_solves", 1);
  const std::size_t n = x_.size();
  const std::size_t m =
      std::min(std::max<std::size_t>(2, options_.inducing_points), n);
  SparseState s;
  // Strided inducing selection over the scaled rows — the mle_subsample
  // idiom, deterministic and independent of worker count.
  s.z.reserve(m);
  const double stride = static_cast<double>(n) / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto idx =
        static_cast<std::size_t>(static_cast<double>(i) * stride);
    s.z.push_back(x_[idx]);
  }
  la::Matrix kmm = kernel_matrix(options_.kernel, params_, s.z);
  s.lm = factor_with_ladder(kmm, diagnostics_);
  s.kmn = kernel_cross(options_.kernel, params_, s.z, x_);

  // B = (Kmm + jitter·I) + Kmn D⁻¹ Knm, accumulated column-by-column in a
  // fixed order (training-row ascending) so the solve is deterministic.
  la::Matrix b_mat = std::move(kmm);
  b_mat.add_diagonal(s.lm->jitter());
  const double noise = std::exp(params_.log_noise_var);
  s.b = la::Vector(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_d = 1.0 / (noise * noise_scale_[i]);
    for (std::size_t r = 0; r < m; ++r) {
      const double kri = s.kmn(r, i) * inv_d;
      for (std::size_t c = 0; c < m; ++c) {
        b_mat(r, c) += kri * s.kmn(c, i);
      }
      s.b[r] += kri * y_[i];
    }
  }
  s.lb = factor_with_ladder(b_mat, diagnostics_);
  s.alpha = s.lb->solve(s.b);

  sparse_ = std::move(s);
  // Exactly one backend owns the solved state.
  chol_.reset();
  alpha_.clear();
  ++factor_epoch_;  // any cached posterior workspace is now stale
  PAMO_ENSURES(sparse_->kmn.cols() == n && sparse_->alpha.size() == m,
               "sparse solve covers every training row through m inducing "
               "points");
}

bool GpRegressor::try_sparse_update(std::size_t new_rows) {
  if (!sparse_.has_value() || !sparse_->lb.has_value()) return false;
  PAMO_SPAN("gp.sparse_update");
  SparseState& s = *sparse_;
  const std::size_t m = s.z.size();
  const std::size_t n_old = x_.size();
  const double noise = std::exp(params_.log_noise_var);

  // Fold each new row into B with a rank-one factor update: B += k kᵀ/σ².
  // Fresh rows always carry noise_scale 1.
  la::Matrix grown(m, n_old + new_rows, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < n_old; ++i) grown(r, i) = s.kmn(r, i);
  }
  const double inv_sigma = 1.0 / std::sqrt(noise);
  for (std::size_t j = 0; j < new_rows; ++j) {
    const std::vector<double> scaled = scale_input(x_raw_[n_old + j]);
    la::Vector k(m);
    for (std::size_t r = 0; r < m; ++r) {
      k[r] = kernel_value(options_.kernel, params_, s.z[r], scaled);
      grown(r, n_old + j) = k[r];
    }
    for (double& v : k) v *= inv_sigma;
    if (!s.lb->rank_one_update(k)) return false;
    x_.push_back(std::move(scaled));
  }
  s.kmn = std::move(grown);
  noise_scale_.insert(noise_scale_.end(), new_rows, 1.0);

  // Re-standardize the targets over the grown set (the rebuild arithmetic)
  // and re-solve the m-dimensional system: O(mn) + O(m²).
  const std::size_t n = x_.size();
  y_mean_ = mean_of(y_raw_);
  y_std_ = stddev_of(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets: keep scale sane
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;
  s.b = la::Vector(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_d = 1.0 / (noise * noise_scale_[i]);
    for (std::size_t r = 0; r < m; ++r) {
      s.b[r] += s.kmn(r, i) * inv_d * y_[i];
    }
  }
  s.alpha = s.lb->solve(s.b);
  return true;
}

Posterior GpRegressor::sparse_posterior(
    const std::vector<std::vector<double>>& xs) const {
  PAMO_EXPECTS(sparse_.has_value(), "sparse_posterior without sparse state");
  const SparseState& s = *sparse_;
  const std::size_t q = xs.size();
  const la::Matrix kzq = kernel_cross(options_.kernel, params_, s.z, xs);
  const la::Matrix k_test = kernel_matrix(options_.kernel, params_, xs);
  const la::Matrix v1 = s.lm->solve_lower(kzq);
  const la::Matrix v2 = s.lb->solve_lower(kzq);
  const la::Matrix q1 = la::matmul_blocked(v1.transposed(), v1);
  const la::Matrix q2 = la::matmul_blocked(v2.transposed(), v2);

  Posterior post;
  post.mean.resize(q);
  const std::size_t m = s.z.size();
  for (std::size_t c = 0; c < q; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < m; ++r) sum += kzq(r, c) * s.alpha[r];
    post.mean[c] = y_mean_ + y_std_ * sum;
  }
  post.covariance = la::Matrix(q, q);
  const double scale2 = y_std_ * y_std_;
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      post.covariance(i, j) =
          (k_test(i, j) - q1(i, j) + q2(i, j)) * scale2;
    }
  }
  return post;
}

}  // namespace pamo::gp
