// Stationary covariance kernels with ARD lengthscales.
//
// Hyperparameters are stored in log space so marginal-likelihood
// optimization is unconstrained-ish (we still box them to sane ranges).
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace pamo::gp {

enum class KernelType {
  kRbf,       // squared exponential
  kMatern52,  // Matérn ν = 5/2
};

/// Kernel hyperparameters (all in natural log space).
struct KernelParams {
  std::vector<double> log_lengthscales;  // one per input dimension (ARD)
  double log_signal_var = 0.0;           // log σ_f²
  double log_noise_var = -4.0;           // log σ_n² (on standardized targets)

  [[nodiscard]] std::size_t dim() const { return log_lengthscales.size(); }

  /// Flatten to a vector for the optimizer: [ls..., signal, noise].
  [[nodiscard]] std::vector<double> pack() const;
  static KernelParams unpack(const std::vector<double>& packed,
                             std::size_t dim);
};

/// k(x, z) for a single pair (without noise).
double kernel_value(KernelType type, const KernelParams& params,
                    const std::vector<double>& x, const std::vector<double>& z);

/// Symmetric Gram matrix K(X, X) (without noise on the diagonal).
la::Matrix kernel_matrix(KernelType type, const KernelParams& params,
                         const std::vector<std::vector<double>>& x);

/// Cross covariance K(X, Z), rows indexed by X.
la::Matrix kernel_cross(KernelType type, const KernelParams& params,
                        const std::vector<std::vector<double>>& x,
                        const std::vector<std::vector<double>>& z);

}  // namespace pamo::gp
