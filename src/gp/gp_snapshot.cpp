// GpRegressor checkpoint serialization (see gp_regressor.hpp).
//
// The snapshot carries everything the fitted state owns — including the
// Cholesky factor bits and its jitter — rather than refitting on restore:
// a refit would redo the jitter ladder and MLE from scratch, and any
// difference in that path (a different recovery jitter, another Nelder–
// Mead tie) would silently fork the BO trajectory after resume. Restoring
// the exact factor also preserves incremental-update eligibility, which
// requires jitter == 0 on the cached factor.
#include <utility>

#include "ckpt/codec.hpp"
#include "common/error.hpp"
#include "gp/gp_regressor.hpp"

namespace pamo::gp {

namespace json = obs::json;
namespace codec = ckpt::codec;

namespace {

// pamo-analyze: snapshot(KernelParams)
json::Value params_to_json(const KernelParams& params) {
  json::Value obj = json::Value::object();
  obj.set("log_lengthscales", codec::doubles_to_json(params.log_lengthscales));
  obj.set("log_signal_var", json::Value(params.log_signal_var));
  obj.set("log_noise_var", json::Value(params.log_noise_var));
  return obj;
}

// pamo-analyze: snapshot(KernelParams)
KernelParams params_from_json(const json::Value& v) {
  KernelParams params;
  params.log_lengthscales = codec::doubles_from_json(v.at("log_lengthscales"));
  params.log_signal_var = v.at("log_signal_var").as_double();
  params.log_noise_var = v.at("log_noise_var").as_double();
  return params;
}

// pamo-analyze: snapshot(GpFitDiagnostics)
json::Value diagnostics_to_json(const GpFitDiagnostics& d) {
  json::Value obj = json::Value::object();
  obj.set("rows_rejected", json::Value(std::uint64_t{d.rows_rejected}));
  obj.set("outliers_downweighted",
          json::Value(std::uint64_t{d.outliers_downweighted}));
  obj.set("cholesky_recoveries",
          json::Value(std::uint64_t{d.cholesky_recoveries}));
  obj.set("fit_jitter", json::Value(d.fit_jitter));
  obj.set("posterior_jitter", json::Value(d.posterior_jitter));
  obj.set("incremental_updates",
          json::Value(std::uint64_t{d.incremental_updates}));
  obj.set("incremental_fallbacks",
          json::Value(std::uint64_t{d.incremental_fallbacks}));
  obj.set("drift_fires", json::Value(std::uint64_t{d.drift_fires}));
  obj.set("drift_downweighted",
          json::Value(std::uint64_t{d.drift_downweighted}));
  obj.set("drift_score", json::Value(d.drift_score));
  return obj;
}

// pamo-analyze: snapshot(GpFitDiagnostics)
GpFitDiagnostics diagnostics_from_json(const json::Value& v) {
  GpFitDiagnostics d;
  d.rows_rejected = static_cast<std::size_t>(v.at("rows_rejected").as_uint());
  d.outliers_downweighted =
      static_cast<std::size_t>(v.at("outliers_downweighted").as_uint());
  d.cholesky_recoveries =
      static_cast<std::size_t>(v.at("cholesky_recoveries").as_uint());
  d.fit_jitter = v.at("fit_jitter").as_double();
  d.posterior_jitter = v.at("posterior_jitter").as_double();
  d.incremental_updates =
      static_cast<std::size_t>(v.at("incremental_updates").as_uint());
  d.incremental_fallbacks =
      static_cast<std::size_t>(v.at("incremental_fallbacks").as_uint());
  // Drift counters postdate the first snapshot format; absent keys read as
  // zero so old checkpoints stay loadable (backward-readable addition).
  if (const json::Value* fires = v.find("drift_fires")) {
    d.drift_fires = static_cast<std::size_t>(fires->as_uint());
  }
  if (const json::Value* rows = v.find("drift_downweighted")) {
    d.drift_downweighted = static_cast<std::size_t>(rows->as_uint());
  }
  if (const json::Value* score = v.find("drift_score")) {
    d.drift_score = score->as_double();
  }
  return d;
}

}  // namespace

// pamo-analyze: snapshot(SparseState)
json::Value GpRegressor::sparse_to_json(const SparseState& s) {
  json::Value obj = json::Value::object();
  obj.set("z", codec::rows_to_json(s.z));
  obj.set("lm", codec::cholesky_to_json(s.lm));
  obj.set("lb", codec::cholesky_to_json(s.lb));
  obj.set("kmn", codec::matrix_to_json(s.kmn));
  obj.set("b", codec::doubles_to_json(s.b));
  obj.set("alpha", codec::doubles_to_json(s.alpha));
  return obj;
}

// pamo-analyze: snapshot(SparseState)
GpRegressor::SparseState GpRegressor::sparse_from_json(const json::Value& v) {
  SparseState s;
  s.z = codec::rows_from_json(v.at("z"));
  s.lm = codec::cholesky_from_json(v.at("lm"));
  s.lb = codec::cholesky_from_json(v.at("lb"));
  s.kmn = codec::matrix_from_json(v.at("kmn"));
  s.b = codec::doubles_from_json(v.at("b"));
  s.alpha = codec::doubles_from_json(v.at("alpha"));
  return s;
}

// pamo-analyze: snapshot(GpRegressor)
json::Value GpRegressor::snapshot() const {
  PAMO_CHECK(x_.size() == y_.size() && x_raw_.size() == y_raw_.size(),
             "GP snapshot over inconsistent training arrays");
  json::Value obj = json::Value::object();
  obj.set("dim", json::Value(std::uint64_t{dim_}));
  obj.set("x_raw", codec::rows_to_json(x_raw_));
  obj.set("y_raw", codec::doubles_to_json(y_raw_));
  obj.set("x_lo", codec::doubles_to_json(x_lo_));
  obj.set("x_hi", codec::doubles_to_json(x_hi_));
  obj.set("y_mean", json::Value(y_mean_));
  obj.set("y_std", json::Value(y_std_));
  obj.set("x", codec::rows_to_json(x_));
  obj.set("y", codec::doubles_to_json(y_));
  obj.set("params", params_to_json(params_));
  obj.set("chol", codec::cholesky_to_json(chol_));
  obj.set("alpha", codec::doubles_to_json(alpha_));
  obj.set("noise_scale", codec::doubles_to_json(noise_scale_));
  obj.set("diagnostics", diagnostics_to_json(diagnostics_));
  obj.set("factor_epoch", json::Value(factor_epoch_));
  obj.set("drift_cusum", json::Value(drift_cusum_));
  if (sparse_.has_value()) obj.set("sparse", sparse_to_json(*sparse_));
  return obj;
}

// pamo-analyze: snapshot(GpRegressor)
void GpRegressor::restore(const json::Value& snap) {
  dim_ = static_cast<std::size_t>(snap.at("dim").as_uint());
  x_raw_ = codec::rows_from_json(snap.at("x_raw"));
  y_raw_ = codec::doubles_from_json(snap.at("y_raw"));
  x_lo_ = codec::doubles_from_json(snap.at("x_lo"));
  x_hi_ = codec::doubles_from_json(snap.at("x_hi"));
  y_mean_ = snap.at("y_mean").as_double();
  y_std_ = snap.at("y_std").as_double();
  x_ = codec::rows_from_json(snap.at("x"));
  y_ = codec::doubles_from_json(snap.at("y"));
  params_ = params_from_json(snap.at("params"));
  chol_ = codec::cholesky_from_json(snap.at("chol"));
  alpha_ = codec::doubles_from_json(snap.at("alpha"));
  noise_scale_ = codec::doubles_from_json(snap.at("noise_scale"));
  diagnostics_ = diagnostics_from_json(snap.at("diagnostics"));
  factor_epoch_ = snap.at("factor_epoch").as_uint();
  // Backward-readable addition: pre-drift snapshots carry no CUSUM state.
  const json::Value* cusum = snap.find("drift_cusum");
  drift_cusum_ = cusum ? cusum->as_double() : 0.0;
  // Backward-readable addition: exact-backend snapshots carry no sparse
  // system (the key is emitted only when the state exists).
  const json::Value* sparse = snap.find("sparse");
  sparse_ = sparse ? std::optional<SparseState>(sparse_from_json(*sparse))
                   : std::nullopt;
  PAMO_CHECK(x_.size() == y_.size() && x_raw_.size() == y_raw_.size(),
             "GP snapshot is internally inconsistent");
  PAMO_CHECK(!is_fit() || sparse_.has_value() ||
                 (chol_.has_value() && alpha_.size() == x_.size()),
             "fitted GP snapshot must carry its factorization");
  PAMO_CHECK(!sparse_.has_value() ||
                 (sparse_->lm.has_value() && sparse_->lb.has_value() &&
                  sparse_->kmn.cols() == x_.size() &&
                  sparse_->alpha.size() == sparse_->z.size()),
             "sparse GP snapshot must carry a complete inducing system");
  // The posterior workspace is a cache keyed to the live factor; drop it.
  workspace_ = PosteriorWorkspace{};
}

}  // namespace pamo::gp
