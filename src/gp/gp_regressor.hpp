// Exact Gaussian process regression with MLE hyperparameters.
//
// Targets are standardized internally (zero mean, unit variance); inputs
// are min-max scaled to [0, 1] per dimension so that lengthscale priors and
// boxes are dimensionless. Hyperparameters are fit by multi-start
// Nelder–Mead on the negative log marginal likelihood. predict() returns
// the posterior on the original target scale.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gp/kernel.hpp"
#include "la/cholesky.hpp"
#include "obs/json.hpp"

namespace pamo::gp {

/// Inference backend of a GpRegressor.
enum class GpBackend {
  /// Exact GP: O(n³) factorization (O(n²) incremental extension), the
  /// paper's regressor. The default; every pre-existing code path is
  /// bit-for-bit unchanged under it.
  kExact,
  /// Inducing-point approximation (Deterministic Training Conditional):
  /// inference runs through m = min(GpOptions::inducing_points, n)
  /// inducing inputs (a strided subset of the training rows), so the
  /// per-prediction and per-update cost is bounded by m — O(m²n) for a
  /// full solve, O(m² + mn) per incremental update — instead of growing
  /// as n³. With m == n the DTC posterior coincides analytically with the
  /// exact GP; with m < n it is an approximation whose error contract is
  /// pinned by tests/gp/test_gp_sparse.cpp. Unsupported combinations
  /// (robust_noise) are rejected at fit() time.
  kInducing,
};

struct GpOptions {
  KernelType kernel = KernelType::kMatern52;
  /// Number of Nelder–Mead restarts for hyperparameter MLE.
  std::size_t mle_restarts = 4;
  std::size_t mle_max_evals = 300;
  /// If set, skip MLE and use these hyperparameters as-is.
  std::optional<KernelParams> fixed_params;
  /// Lower bound for the noise variance (standardized target scale).
  double min_noise_var = 1e-6;
  /// Hyperparameter MLE runs on at most this many (strided) training
  /// points; exact inference still uses all of them. The marginal
  /// likelihood is O(n³) per evaluation, so this caps fit cost on large
  /// training sets. 0 disables subsampling.
  std::size_t mle_subsample = 220;
  /// When true, non-finite (NaN/Inf) training rows are dropped and counted
  /// in diagnostics() instead of failing the fit — at least 2 finite rows
  /// must remain. When false, fit()/update() reject non-finite data with a
  /// clear precondition error.
  bool reject_nonfinite = false;
  /// Outlier-robust fitting: after the standard solve, training points
  /// whose standardized residual exceeds `robust_threshold` get their
  /// observation-noise variance inflated proportionally and the linear
  /// algebra is re-solved (iteratively reweighted noise). A heavy-tailed
  /// outlier is then explained as noise instead of bending the posterior
  /// mean. No-op (bit-for-bit) when no residual crosses the threshold.
  bool robust_noise = false;
  std::size_t robust_rounds = 3;
  double robust_threshold = 3.0;
  /// Cap on the per-point noise-variance inflation factor.
  double robust_inflation_cap = 1e4;
  /// PSD-repair jitter cap for posterior covariance sampling
  /// (sample_joint); the jitter actually applied is recorded in
  /// diagnostics().posterior_jitter.
  double posterior_max_jitter = 1e-2;
  /// O(n²) hot path for the decision loop: update() extends the cached
  /// Cholesky factor by the new rows instead of refactorizing, and
  /// posterior() keeps a cross-covariance workspace that is reused (and
  /// incrementally extended) across calls over the same query set. Both
  /// are bit-for-bit identical to the full recomputation and fall back to
  /// it automatically whenever exactness cannot be guaranteed — see
  /// diagnostics().incremental_fallbacks for when that happens.
  bool incremental = true;
  /// Inference backend (see GpBackend). Hyperparameter MLE is shared by
  /// both backends: it always runs on the exact marginal likelihood of an
  /// mle_subsample-strided subset, so switching the backend changes the
  /// inference cost model, never the hyperparameter search.
  GpBackend backend = GpBackend::kExact;
  /// Inducing-point budget m for GpBackend::kInducing. The inducing set
  /// is a deterministic strided subset of the (scaled) training rows,
  /// re-selected on every full solve and frozen across incremental
  /// updates (that freeze is what keeps updates O(m² + mn)).
  std::size_t inducing_points = 64;
  /// Drift detection for continual learning: a CUSUM statistic over the
  /// standardized prediction residuals of incoming update() rows, scored
  /// against the posterior *before* they are incorporated. Each row
  /// contributes max(0, S + |z| − k) to the running score S; when S
  /// exceeds `drift_cusum_h` the detector fires: every pre-existing
  /// training row's noise variance is inflated by
  /// `drift_forget_inflation` (selective forgetting — stale observations
  /// are down-weighted, never evicted) and the system is re-solved
  /// *without* re-optimizing hyperparameters. A fire with `reoptimize`
  /// requested still runs the full MLE rebuild (which supersedes the
  /// forgetting). drift_cusum_h == 0 disables the detector entirely
  /// (default; bit-for-bit no-op).
  double drift_cusum_h = 0.0;
  /// CUSUM drift allowance k: |z| below it decays the score. The default
  /// sits above the folded-normal mean E|z| ≈ 0.8, so a stationary stream
  /// decays the score instead of creeping it upward.
  double drift_cusum_k = 1.0;
  /// Noise-variance inflation applied to pre-drift rows on a fire
  /// (bounded by robust_inflation_cap).
  double drift_forget_inflation = 4.0;
  std::uint64_t seed = 0xC0FFEE;
};

/// Robustness bookkeeping of the most recent fit (reset by fit(),
/// accumulated across update() calls).
struct GpFitDiagnostics {
  /// Non-finite training rows dropped by sanitization.
  std::size_t rows_rejected = 0;
  /// Training points whose noise variance the robust fit inflated.
  std::size_t outliers_downweighted = 0;
  /// Cholesky failures recovered by re-factorizing with a wider jitter cap.
  std::size_t cholesky_recoveries = 0;
  /// Largest diagonal jitter added to the training-covariance factorization.
  double fit_jitter = 0.0;
  /// Largest jitter used to repair a sampled posterior covariance.
  double posterior_jitter = 0.0;
  /// update() calls served by the O(n²) incremental factor extension.
  std::size_t incremental_updates = 0;
  /// Incremental-eligible update() calls that fell back to a full rebuild
  /// (hyperparameter re-optimization, robust noise, prior jitter, a grown
  /// input box, or a non-PD extension).
  std::size_t incremental_fallbacks = 0;
  /// Drift-detector (CUSUM) fires since the last fit().
  std::size_t drift_fires = 0;
  /// Training rows down-weighted by drift forgetting (cumulative over
  /// fires; a row hit twice counts twice).
  std::size_t drift_downweighted = 0;
  /// Current CUSUM score (resets to 0 on a fire).
  double drift_score = 0.0;
};

struct Posterior {
  la::Vector mean;
  la::Matrix covariance;  // full joint covariance (noise-free latent)
};

class GpRegressor {
 public:
  explicit GpRegressor(GpOptions options = {});

  /// Fit to (x, y). Requires at least 2 points; all rows must share one
  /// dimension. Refitting replaces previous data.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  /// Add observations and refit the linear algebra. Hyperparameters are
  /// re-optimized only when `reoptimize` is true (it is the expensive part).
  void update(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y, bool reoptimize = false);

  [[nodiscard]] bool is_fit() const { return !x_.empty(); }
  [[nodiscard]] std::size_t num_points() const { return x_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const KernelParams& params() const { return params_; }

  /// Robustness bookkeeping since the last fit(). posterior_jitter is
  /// additionally updated by sample_joint (hence mutable state).
  [[nodiscard]] const GpFitDiagnostics& diagnostics() const {
    return diagnostics_;
  }

  /// Posterior mean at one point (original target scale).
  [[nodiscard]] double predict_mean(const std::vector<double>& x) const;

  /// Posterior variance of the latent function at one point (original
  /// target scale, without observation noise).
  [[nodiscard]] double predict_var(const std::vector<double>& x) const;

  /// Joint posterior over a set of points.
  [[nodiscard]] Posterior posterior(
      const std::vector<std::vector<double>>& x) const;

  /// Draw `num_samples` joint samples of the latent function at `x`.
  /// Result is (num_samples × x.size()).
  [[nodiscard]] la::Matrix sample_joint(
      const std::vector<std::vector<double>>& x, std::size_t num_samples,
      Rng& rng) const;

  /// sample_joint with the standard normals supplied by the caller: row s
  /// of `z` (num_samples × x.size()) drives sample s. Lets callers pre-draw
  /// the randomness serially in a fixed order and run the deterministic
  /// colouring transform in parallel — sample_joint(x, S, rng) is exactly
  /// sample_joint_given(x, z) with z filled row-major from `rng`.
  [[nodiscard]] la::Matrix sample_joint_given(
      const std::vector<std::vector<double>>& x, const la::Matrix& z) const;

  /// Log marginal likelihood of the standardized data under `params`.
  [[nodiscard]] double log_marginal_likelihood(
      const KernelParams& params) const;

  /// Serialize the complete fitted state — training data, scaling,
  /// hyperparameters, the Cholesky factor (with its jitter), alpha, the
  /// robust-noise scales, diagnostics counters, and the factor epoch —
  /// as deterministic JSON. The mutable posterior workspace is a pure
  /// cache and is not serialized (recomputing it is bit-identical).
  [[nodiscard]] obs::json::Value snapshot() const;

  /// Rebuild the fitted state from snapshot(). The regressor must have
  /// been constructed with the same GpOptions as the snapshotted one;
  /// after restore, every prediction, sample, and incremental update is
  /// bit-for-bit identical to the original instance's.
  void restore(const obs::json::Value& snap);

 private:
  /// Cross-covariance workspace reused by posterior() across calls over
  /// the same query set. `key` fingerprints the scaled query rows (with an
  /// exact row comparison against `xs` to rule out hash collisions);
  /// `factor_epoch` ties V to the factor it was computed against, and
  /// `train_rows` lets an incrementally-extended factor extend k_cross/V
  /// by the new training rows instead of recomputing them.
  struct PosteriorWorkspace {
    bool valid = false;
    std::uint64_t key = 0;
    std::uint64_t factor_epoch = 0;
    std::size_t train_rows = 0;
    std::vector<std::vector<double>> xs;  // scaled query rows
    la::Matrix k_cross;                   // m × n
    la::Matrix k_test;                    // m × m
    la::Matrix v;                         // n × m, V = L⁻¹ K*ᵀ
  };

  /// Fitted state of the kInducing backend (absent under kExact). All of
  /// it lives in standardized-target / scaled-input space, like the exact
  /// factorization it replaces. D below is the per-row noise σ²·λ_i
  /// (noise_scale_), so drift forgetting flows through the sparse solve
  /// the same way it flows through the exact one.
  struct SparseState {
    std::vector<std::vector<double>> z;  // inducing rows (scaled inputs)
    std::optional<la::Cholesky> lm;      // chol(Kmm [+ ladder jitter])
    std::optional<la::Cholesky> lb;      // chol(B), B = Kmm_j + Kmn D⁻¹ Knm
    la::Matrix kmn;                      // m × n cross-covariance
    la::Vector b;                        // Kmn D⁻¹ y
    la::Vector alpha;                    // B⁻¹ b
  };

  void rebuild(bool optimize_hyperparams);
  /// O(n²) update: extend the cached factor by the last `new_rows` rows of
  /// x_raw_/y_raw_. Returns false when the extension would not be
  /// bit-identical to a full rebuild (see GpOptions::incremental); the
  /// fitted state is untouched then.
  bool try_incremental_update(std::size_t new_rows);
  /// Bring workspace_ up to date for the scaled query rows `xs`.
  void refresh_posterior_workspace(std::vector<std::vector<double>>&& xs) const;
  /// Factorize K(x_, x_) + σ²·diag(noise_scale_) and solve for alpha_,
  /// recovering from Cholesky failures by widening the jitter cap.
  /// Routes to solve_sparse() under GpBackend::kInducing.
  void solve_system();
  /// kInducing: select the inducing set from the current training rows and
  /// solve the DTC system (Lm, B, b, alpha) from scratch in O(m²n).
  void solve_sparse();
  /// kInducing O(m² + mn) update: fold the last `new_rows` rows into the
  /// frozen inducing system via rank-one factor updates of B. Returns
  /// false when the sparse state is missing (callers then re-solve).
  bool try_sparse_update(std::size_t new_rows);
  /// DTC joint posterior over scaled query rows (standardized scale
  /// handled by the caller-facing posterior()).
  [[nodiscard]] Posterior sparse_posterior(
      const std::vector<std::vector<double>>& xs) const;
  /// Sparse-system snapshot codec (gp_snapshot.cpp).
  static obs::json::Value sparse_to_json(const SparseState& s);
  static SparseState sparse_from_json(const obs::json::Value& v);
  /// The solved system covers every kept training row (postcondition of
  /// fit()/update(), backend-independent).
  [[nodiscard]] bool solved_over_all_rows() const {
    return sparse_.has_value() ? sparse_->kmn.cols() == x_raw_.size()
                               : alpha_.size() == x_raw_.size();
  }
  /// One pass of iteratively reweighted noise: inflate noise_scale_ for
  /// points with large standardized residuals, then re-solve. Returns
  /// false (leaving the solve untouched, bit-for-bit) when no residual
  /// crosses the threshold.
  bool reweight_outliers();
  /// Selective refit after a drift fire: redo the input scaling and target
  /// standardization over all rows and re-solve with the *current*
  /// noise_scale_ (extended by 1.0 for the `new_rows` fresh rows), so the
  /// forgetting survives. Hyperparameters are never re-optimized here —
  /// skipping the MLE is exactly the cost the detector avoids.
  void refit_keep_noise(std::size_t new_rows);
  /// Drop non-finite rows (reject_nonfinite) or reject them loudly.
  void sanitize(std::vector<std::vector<double>>& x, std::vector<double>& y);
  [[nodiscard]] double lml_on(const std::vector<std::vector<double>>& xs,
                              const std::vector<double>& ys,
                              const KernelParams& params) const;
  [[nodiscard]] std::vector<double> scale_input(
      const std::vector<double>& x) const;

  // Construction-time configuration, re-supplied by the ctor on restore.
  // pamo-analyze: allow(snapshot-coverage)
  GpOptions options_;
  std::size_t dim_ = 0;

  // Raw training data (original scale).
  std::vector<std::vector<double>> x_raw_;
  std::vector<double> y_raw_;

  // Input scaling (min-max per dimension) and target standardization.
  std::vector<double> x_lo_, x_hi_;
  double y_mean_ = 0.0, y_std_ = 1.0;

  // Scaled training data and fitted state.
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;  // standardized
  KernelParams params_;
  std::optional<la::Cholesky> chol_;
  la::Vector alpha_;  // (K + σ²I)⁻¹ y
  // kInducing backend state (absent under kExact; exactly one of
  // chol_/alpha_ and sparse_ is populated after a fit).
  std::optional<SparseState> sparse_;

  // Per-point noise-variance inflation factors (≥ 1; 1 when the robust
  // fit is off or the point is an inlier).
  std::vector<double> noise_scale_;
  // Running CUSUM score of the drift detector (see GpOptions).
  double drift_cusum_ = 0.0;
  mutable GpFitDiagnostics diagnostics_;

  // Bumped by every full refactorization (solve_system); incremental
  // factor extensions keep it, which is what lets the posterior workspace
  // extend its V rows instead of starting over.
  std::uint64_t factor_epoch_ = 0;
  // Prediction scratch: contents are dead between calls.
  // pamo-analyze: allow(snapshot-coverage)
  mutable PosteriorWorkspace workspace_;
};

}  // namespace pamo::gp
