// Exact Gaussian process regression with MLE hyperparameters.
//
// Targets are standardized internally (zero mean, unit variance); inputs
// are min-max scaled to [0, 1] per dimension so that lengthscale priors and
// boxes are dimensionless. Hyperparameters are fit by multi-start
// Nelder–Mead on the negative log marginal likelihood. predict() returns
// the posterior on the original target scale.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gp/kernel.hpp"
#include "la/cholesky.hpp"

namespace pamo::gp {

struct GpOptions {
  KernelType kernel = KernelType::kMatern52;
  /// Number of Nelder–Mead restarts for hyperparameter MLE.
  std::size_t mle_restarts = 4;
  std::size_t mle_max_evals = 300;
  /// If set, skip MLE and use these hyperparameters as-is.
  std::optional<KernelParams> fixed_params;
  /// Lower bound for the noise variance (standardized target scale).
  double min_noise_var = 1e-6;
  /// Hyperparameter MLE runs on at most this many (strided) training
  /// points; exact inference still uses all of them. The marginal
  /// likelihood is O(n³) per evaluation, so this caps fit cost on large
  /// training sets. 0 disables subsampling.
  std::size_t mle_subsample = 220;
  std::uint64_t seed = 0xC0FFEE;
};

struct Posterior {
  la::Vector mean;
  la::Matrix covariance;  // full joint covariance (noise-free latent)
};

class GpRegressor {
 public:
  explicit GpRegressor(GpOptions options = {});

  /// Fit to (x, y). Requires at least 2 points; all rows must share one
  /// dimension. Refitting replaces previous data.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  /// Add observations and refit the linear algebra. Hyperparameters are
  /// re-optimized only when `reoptimize` is true (it is the expensive part).
  void update(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y, bool reoptimize = false);

  [[nodiscard]] bool is_fit() const { return !x_.empty(); }
  [[nodiscard]] std::size_t num_points() const { return x_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const KernelParams& params() const { return params_; }

  /// Posterior mean at one point (original target scale).
  [[nodiscard]] double predict_mean(const std::vector<double>& x) const;

  /// Posterior variance of the latent function at one point (original
  /// target scale, without observation noise).
  [[nodiscard]] double predict_var(const std::vector<double>& x) const;

  /// Joint posterior over a set of points.
  [[nodiscard]] Posterior posterior(
      const std::vector<std::vector<double>>& x) const;

  /// Draw `num_samples` joint samples of the latent function at `x`.
  /// Result is (num_samples × x.size()).
  [[nodiscard]] la::Matrix sample_joint(
      const std::vector<std::vector<double>>& x, std::size_t num_samples,
      Rng& rng) const;

  /// Log marginal likelihood of the standardized data under `params`.
  [[nodiscard]] double log_marginal_likelihood(
      const KernelParams& params) const;

 private:
  void rebuild(bool optimize_hyperparams);
  [[nodiscard]] double lml_on(const std::vector<std::vector<double>>& xs,
                              const std::vector<double>& ys,
                              const KernelParams& params) const;
  [[nodiscard]] std::vector<double> scale_input(
      const std::vector<double>& x) const;

  GpOptions options_;
  std::size_t dim_ = 0;

  // Raw training data (original scale).
  std::vector<std::vector<double>> x_raw_;
  std::vector<double> y_raw_;

  // Input scaling (min-max per dimension) and target standardization.
  std::vector<double> x_lo_, x_hi_;
  double y_mean_ = 0.0, y_std_ = 1.0;

  // Scaled training data and fitted state.
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;  // standardized
  KernelParams params_;
  std::optional<la::Cholesky> chol_;
  la::Vector alpha_;  // (K + σ²I)⁻¹ y
};

}  // namespace pamo::gp
