#include "gp/gp_regressor.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "opt/nelder_mead.hpp"

namespace pamo::gp {

namespace {

constexpr double kLog2Pi = 1.8378770664093454835606594728112;

}  // namespace

GpRegressor::GpRegressor(GpOptions options) : options_(std::move(options)) {}

std::vector<double> GpRegressor::scale_input(
    const std::vector<double>& x) const {
  PAMO_CHECK(x.size() == dim_, "input dimension mismatch");
  std::vector<double> scaled(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double width = x_hi_[i] - x_lo_[i];
    scaled[i] = width > 0 ? (x[i] - x_lo_[i]) / width : 0.0;
  }
  return scaled;
}

void GpRegressor::sanitize(std::vector<std::vector<double>>& x,
                           std::vector<double>& y) {
  auto row_finite = [](const std::vector<double>& row, double yi) {
    if (!std::isfinite(yi)) return false;
    for (const double v : row) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };
  if (!options_.reject_nonfinite) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      PAMO_CHECK(row_finite(x[i], y[i]),
                 "non-finite observation (NaN/Inf) in GP training data; set "
                 "GpOptions::reject_nonfinite to drop such rows");
    }
    return;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (row_finite(x[i], y[i])) {
      if (kept != i) {
        x[kept] = std::move(x[i]);
        y[kept] = y[i];
      }
      ++kept;
    } else {
      ++diagnostics_.rows_rejected;
    }
  }
  x.resize(kept);
  y.resize(kept);
}

void GpRegressor::fit(std::vector<std::vector<double>> x,
                      std::vector<double> y) {
  PAMO_CHECK(x.size() == y.size(), "x/y size mismatch");
  diagnostics_ = {};
  sanitize(x, y);
  PAMO_CHECK(x.size() >= 2, "GP fit requires at least 2 finite points");
  dim_ = x.front().size();
  PAMO_CHECK(dim_ >= 1, "GP inputs must have dimension >= 1");
  for (const auto& row : x) {
    PAMO_CHECK(row.size() == dim_, "ragged input matrix");
  }
  x_raw_ = std::move(x);
  y_raw_ = std::move(y);
  rebuild(/*optimize_hyperparams=*/!options_.fixed_params.has_value());
  PAMO_ENSURES(is_fit() && alpha_.size() == x_raw_.size(),
               "fit leaves a solved system over every kept row");
}

void GpRegressor::update(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y, bool reoptimize) {
  PAMO_CHECK(is_fit(), "update before fit");
  PAMO_CHECK(x.size() == y.size(), "x/y size mismatch");
  std::vector<std::vector<double>> xs = x;
  std::vector<double> ys = y;
  for (const auto& row : xs) {
    PAMO_CHECK(row.size() == dim_, "input dimension mismatch");
  }
  sanitize(xs, ys);
  for (auto& row : xs) x_raw_.push_back(std::move(row));
  y_raw_.insert(y_raw_.end(), ys.begin(), ys.end());
  rebuild(reoptimize && !options_.fixed_params.has_value());
  PAMO_ENSURES(alpha_.size() == x_raw_.size(),
               "update leaves a solved system over every kept row");
}

void GpRegressor::rebuild(bool optimize_hyperparams) {
  const std::size_t n = x_raw_.size();

  // Input scaling.
  x_lo_.assign(dim_, std::numeric_limits<double>::max());
  x_hi_.assign(dim_, std::numeric_limits<double>::lowest());
  for (const auto& row : x_raw_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      x_lo_[i] = std::min(x_lo_[i], row[i]);
      x_hi_[i] = std::max(x_hi_[i], row[i]);
    }
  }
  x_.clear();
  x_.reserve(n);
  for (const auto& row : x_raw_) x_.push_back(scale_input(row));

  // Target standardization.
  y_mean_ = mean_of(y_raw_);
  y_std_ = stddev_of(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets: keep scale sane
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;

  if (options_.fixed_params.has_value()) {
    params_ = *options_.fixed_params;
    PAMO_CHECK(params_.dim() == dim_, "fixed hyperparameter dim mismatch");
  } else if (optimize_hyperparams || params_.dim() != dim_) {
    // MLE over [lengthscales, signal var, noise var] in log space.
    opt::Box box;
    const std::size_t p = dim_ + 2;
    box.lo.assign(p, 0.0);
    box.hi.assign(p, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      box.lo[i] = std::log(0.03);  // inputs are scaled to [0,1]
      box.hi[i] = std::log(10.0);
    }
    box.lo[dim_] = std::log(0.05);  // signal variance (standardized y)
    box.hi[dim_] = std::log(20.0);
    box.lo[dim_ + 1] = std::log(options_.min_noise_var);
    box.hi[dim_ + 1] = std::log(1.0);

    // MLE on a strided subsample when the training set is large — the
    // marginal likelihood is O(n³) per evaluation.
    std::vector<std::vector<double>> mle_x;
    std::vector<double> mle_y;
    const std::size_t cap = options_.mle_subsample;
    if (cap > 0 && n > cap) {
      const double stride = static_cast<double>(n) / static_cast<double>(cap);
      for (std::size_t i = 0; i < cap; ++i) {
        const auto idx = static_cast<std::size_t>(
            static_cast<double>(i) * stride);
        mle_x.push_back(x_[idx]);
        mle_y.push_back(y_[idx]);
      }
    } else {
      mle_x = x_;
      mle_y = y_;
    }
    auto objective = [&](const std::vector<double>& packed) {
      const KernelParams candidate = KernelParams::unpack(packed, dim_);
      return -lml_on(mle_x, mle_y, candidate);
    };

    KernelParams init;
    init.log_lengthscales.assign(dim_, std::log(0.3));
    init.log_signal_var = 0.0;
    init.log_noise_var = std::log(1e-2);
    const std::vector<double> x0 = init.pack();

    opt::NelderMeadOptions nm;
    nm.max_evals = options_.mle_max_evals;
    const opt::OptResult best = opt::multistart_minimize(
        objective, box, options_.mle_restarts, options_.seed, &x0, nm);
    params_ = KernelParams::unpack(best.x, dim_);
  }

  noise_scale_.assign(n, 1.0);
  solve_system();
  if (options_.robust_noise) {
    for (std::size_t round = 0; round < options_.robust_rounds; ++round) {
      if (!reweight_outliers()) break;
    }
  }
}

void GpRegressor::solve_system() {
  la::Matrix k = kernel_matrix(options_.kernel, params_, x_);
  const double noise = std::exp(params_.log_noise_var);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    k(i, i) += noise * noise_scale_[i];
  }
  // Degrade to a wider jitter cap instead of throwing: a near-singular
  // training covariance (duplicated inputs, heavily inflated outlier rows)
  // yields a smoother posterior rather than a dead learner.
  constexpr double kJitterLadder[] = {1e-4, 1e-2, 1.0};
  constexpr std::size_t kAttempts = 3;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      chol_.emplace(k, kJitterLadder[attempt]);
      break;
    } catch (const Error&) {
      if (attempt + 1 >= kAttempts) throw;
      ++diagnostics_.cholesky_recoveries;
    }
  }
  diagnostics_.fit_jitter = std::max(diagnostics_.fit_jitter, chol_->jitter());
  alpha_ = chol_->solve(y_);
}

bool GpRegressor::reweight_outliers() {
  const double noise = std::exp(params_.log_noise_var);
  bool changed = false;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    const double var_i = noise * noise_scale_[i];
    // At the training points the posterior mean is y − Σnoise·α, so the
    // residual is var_i·α_i and its standardized form is √var_i·α_i.
    const double z = std::sqrt(var_i) * alpha_[i];
    if (std::fabs(z) <= options_.robust_threshold) continue;
    const double ratio = std::fabs(z) / options_.robust_threshold;
    const double target = std::min(options_.robust_inflation_cap,
                                   noise_scale_[i] * ratio * ratio);
    if (target > noise_scale_[i]) {
      // Scale is exactly 1.0 until the first inflation: this counts each
      // point at most once across the reweighting rounds.
      if (noise_scale_[i] == 1.0) ++diagnostics_.outliers_downweighted;  // pamo-lint: allow(float-eq)
      noise_scale_[i] = target;
      changed = true;
    }
  }
  if (changed) solve_system();
  return changed;
}

double GpRegressor::lml_on(const std::vector<std::vector<double>>& xs,
                           const std::vector<double>& ys,
                           const KernelParams& params) const {
  la::Matrix k = kernel_matrix(options_.kernel, params, xs);
  k.add_diagonal(std::exp(params.log_noise_var));
  try {
    const la::Cholesky chol(k);
    const la::Vector alpha = chol.solve(ys);
    const double fit_term = la::dot(ys, alpha);
    const auto n = static_cast<double>(xs.size());
    return -0.5 * (fit_term + chol.log_det() + n * kLog2Pi);
  } catch (const Error&) {
    return -std::numeric_limits<double>::max();
  }
}

double GpRegressor::log_marginal_likelihood(const KernelParams& params) const {
  PAMO_CHECK(!x_.empty(), "log_marginal_likelihood before fit");
  return lml_on(x_, y_, params);
}

double GpRegressor::predict_mean(const std::vector<double>& x) const {
  PAMO_CHECK(is_fit(), "predict before fit");
  const std::vector<double> xs = scale_input(x);
  double sum = 0.0;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    sum += kernel_value(options_.kernel, params_, xs, x_[i]) * alpha_[i];
  }
  return y_mean_ + y_std_ * sum;
}

double GpRegressor::predict_var(const std::vector<double>& x) const {
  PAMO_CHECK(is_fit(), "predict before fit");
  const std::vector<double> xs = scale_input(x);
  la::Vector kstar(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    kstar[i] = kernel_value(options_.kernel, params_, xs, x_[i]);
  }
  const la::Vector v = chol_->solve_lower(kstar);
  const double prior = std::exp(params_.log_signal_var);
  const double var = prior - la::dot(v, v);
  return std::max(0.0, var) * y_std_ * y_std_;
}

Posterior GpRegressor::posterior(
    const std::vector<std::vector<double>>& x) const {
  PAMO_CHECK(is_fit(), "posterior before fit");
  const std::size_t m = x.size();
  PAMO_CHECK(m > 0, "posterior over an empty set");
  std::vector<std::vector<double>> xs;
  xs.reserve(m);
  for (const auto& row : x) xs.push_back(scale_input(row));

  const la::Matrix k_cross =
      kernel_cross(options_.kernel, params_, xs, x_);  // m × n
  la::Matrix k_test = kernel_matrix(options_.kernel, params_, xs);  // m × m

  Posterior post;
  post.mean.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < x_.size(); ++j) sum += k_cross(i, j) * alpha_[j];
    post.mean[i] = y_mean_ + y_std_ * sum;
  }

  // cov = K** - K*ᵀ (K + σ²I)⁻¹ K*, computed via V = L⁻¹ K*ᵀ.
  const std::size_t n = x_.size();
  la::Matrix v(n, m);
  {
    la::Vector col(n);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t r = 0; r < n; ++r) col[r] = k_cross(c, r);
      const la::Vector sol = chol_->solve_lower(col);
      for (std::size_t r = 0; r < n; ++r) v(r, c) = sol[r];
    }
  }
  post.covariance = la::Matrix(m, m);
  const double scale2 = y_std_ * y_std_;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      double vv = 0.0;
      for (std::size_t r = 0; r < n; ++r) vv += v(r, i) * v(r, j);
      const double c = (k_test(i, j) - vv) * scale2;
      post.covariance(i, j) = c;
      post.covariance(j, i) = c;
    }
  }
  PAMO_ENSURES(post.mean.size() == m && post.covariance.rows() == m &&
                   post.covariance.cols() == m,
               "posterior is square over the query set");
  return post;
}

la::Matrix GpRegressor::sample_joint(const std::vector<std::vector<double>>& x,
                                     std::size_t num_samples, Rng& rng) const {
  PAMO_EXPECTS(num_samples > 0, "sample_joint of zero samples");
  const Posterior post = posterior(x);
  const std::size_t m = x.size();
  la::Matrix cov = post.covariance;
  // Small jitter for numerical PSD-ness of the posterior covariance.
  const la::Cholesky chol(cov, options_.posterior_max_jitter);
  diagnostics_.posterior_jitter =
      std::max(diagnostics_.posterior_jitter, chol.jitter());
  la::Matrix samples(num_samples, m);
  la::Vector z(m);
  for (std::size_t s = 0; s < num_samples; ++s) {
    for (auto& zi : z) zi = rng.normal();
    for (std::size_t i = 0; i < m; ++i) {
      double sum = post.mean[i];
      for (std::size_t j = 0; j <= i; ++j) sum += chol.lower()(i, j) * z[j];
      samples(s, i) = sum;
    }
  }
  return samples;
}

}  // namespace pamo::gp
