#include "gp/gp_regressor.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "opt/nelder_mead.hpp"

namespace pamo::gp {

namespace {

constexpr double kLog2Pi = 1.8378770664093454835606594728112;

/// FNV-1a over the bit patterns of a query set; fingerprints the posterior
/// workspace (backed by an exact row comparison, so collisions only cost a
/// recompute, never a wrong reuse).
std::uint64_t fingerprint_rows(const std::vector<std::vector<double>>& xs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(xs.size());
  for (const auto& row : xs) {
    for (const double d : row) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

}  // namespace

GpRegressor::GpRegressor(GpOptions options) : options_(std::move(options)) {}

std::vector<double> GpRegressor::scale_input(
    const std::vector<double>& x) const {
  PAMO_CHECK(x.size() == dim_, "input dimension mismatch");
  std::vector<double> scaled(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double width = x_hi_[i] - x_lo_[i];
    scaled[i] = width > 0 ? (x[i] - x_lo_[i]) / width : 0.0;
  }
  return scaled;
}

void GpRegressor::sanitize(std::vector<std::vector<double>>& x,
                           std::vector<double>& y) {
  auto row_finite = [](const std::vector<double>& row, double yi) {
    if (!std::isfinite(yi)) return false;
    for (const double v : row) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };
  if (!options_.reject_nonfinite) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      PAMO_CHECK(row_finite(x[i], y[i]),
                 "non-finite observation (NaN/Inf) in GP training data; set "
                 "GpOptions::reject_nonfinite to drop such rows");
    }
    return;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (row_finite(x[i], y[i])) {
      if (kept != i) {
        x[kept] = std::move(x[i]);
        y[kept] = y[i];
      }
      ++kept;
    } else {
      ++diagnostics_.rows_rejected;
    }
  }
  x.resize(kept);
  y.resize(kept);
}

void GpRegressor::fit(std::vector<std::vector<double>> x,
                      std::vector<double> y) {
  PAMO_SPAN("gp.fit");
  PAMO_COUNT("gp.fits", 1);
  PAMO_CHECK(x.size() == y.size(), "x/y size mismatch");
  diagnostics_ = {};
  drift_cusum_ = 0.0;
  noise_scale_.clear();
  sanitize(x, y);
  PAMO_CHECK(x.size() >= 2, "GP fit requires at least 2 finite points");
  dim_ = x.front().size();
  PAMO_CHECK(dim_ >= 1, "GP inputs must have dimension >= 1");
  for (const auto& row : x) {
    PAMO_CHECK(row.size() == dim_, "ragged input matrix");
  }
  PAMO_CHECK(options_.backend == GpBackend::kExact || !options_.robust_noise,
             "robust_noise requires the exact backend (the IRLS residuals "
             "are defined against the full factorization)");
  x_raw_ = std::move(x);
  y_raw_ = std::move(y);
  rebuild(/*optimize_hyperparams=*/!options_.fixed_params.has_value());
  PAMO_ENSURES(is_fit() && solved_over_all_rows(),
               "fit leaves a solved system over every kept row");
}

void GpRegressor::update(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y, bool reoptimize) {
  PAMO_SPAN("gp.update");
  PAMO_COUNT("gp.updates", 1);
  PAMO_CHECK(is_fit(), "update before fit");
  PAMO_CHECK(x.size() == y.size(), "x/y size mismatch");
  std::vector<std::vector<double>> xs = x;
  std::vector<double> ys = y;
  for (const auto& row : xs) {
    PAMO_CHECK(row.size() == dim_, "input dimension mismatch");
  }
  sanitize(xs, ys);
  const bool want_mle = reoptimize && !options_.fixed_params.has_value();
  if (xs.empty() && !want_mle) {
    // Nothing new and no re-optimization: the solved system already is
    // exactly what a rebuild over the unchanged data would produce.
    return;
  }
  // Drift detection: score incoming rows against the posterior *before*
  // they are incorporated. A fire down-weights every pre-existing row and
  // forces a re-solve (never an MLE refit), so a content shift gets
  // explained by fresh data instead of averaged into a stale posterior.
  bool drift_fired = false;
  if (options_.drift_cusum_h > 0.0 && !xs.empty()) {
    const double noise_raw =
        std::exp(params_.log_noise_var) * y_std_ * y_std_;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double mu = predict_mean(xs[i]);
      const double var = predict_var(xs[i]) + noise_raw;
      const double z = (ys[i] - mu) / std::sqrt(std::max(var, 1e-12));
      drift_cusum_ = std::max(
          0.0, drift_cusum_ + std::fabs(z) - options_.drift_cusum_k);
    }
    if (drift_cusum_ > options_.drift_cusum_h) {
      drift_fired = true;
      ++diagnostics_.drift_fires;
      for (double& scale : noise_scale_) {
        scale = std::min(options_.robust_inflation_cap,
                         scale * options_.drift_forget_inflation);
      }
      diagnostics_.drift_downweighted += noise_scale_.size();
      drift_cusum_ = 0.0;
    }
    diagnostics_.drift_score = drift_cusum_;
  }
  // The factor extension is exact only when the solved system is a pure
  // function of the appended rows: hyperparameters kept, robust noise off
  // (reweighting re-solves over all rows), a jitter-free factor (the
  // ladder restarts from zero on a full rebuild), and every new input
  // inside the training box, so the min-max scaling of old rows — and with
  // it the entire existing system — is unchanged.
  auto inside_box = [this](const std::vector<std::vector<double>>& rows) {
    for (const auto& row : rows) {
      for (std::size_t d = 0; d < dim_; ++d) {
        if (row[d] < x_lo_[d] || row[d] > x_hi_[d]) return false;
      }
    }
    return true;
  };
  const bool eligible = options_.incremental && !want_mle && !drift_fired &&
                        !options_.robust_noise && chol_.has_value() &&
                        chol_->jitter() == 0.0 &&  // pamo-lint: allow(float-eq)
                        !xs.empty() && inside_box(xs);
  // The sparse system's inducing set and input scaling are frozen across
  // incremental updates; a drift fire or an out-of-box row re-solves (and
  // re-selects the inducing set) from scratch instead.
  const bool sparse_eligible = options_.incremental && !want_mle &&
                               !drift_fired && sparse_.has_value() &&
                               !xs.empty() && inside_box(xs);
  const std::size_t new_rows = xs.size();
  for (auto& row : xs) x_raw_.push_back(std::move(row));
  y_raw_.insert(y_raw_.end(), ys.begin(), ys.end());
  if (eligible && try_incremental_update(new_rows)) {
    ++diagnostics_.incremental_updates;
  } else if (sparse_eligible && try_sparse_update(new_rows)) {
    ++diagnostics_.incremental_updates;
  } else if (drift_fired && !want_mle) {
    // Selective forgetting: the inflated noise scales must survive, so a
    // plain rebuild (which resets them) is off the table.
    refit_keep_noise(new_rows);
  } else {
    if (options_.incremental && !want_mle) ++diagnostics_.incremental_fallbacks;
    rebuild(want_mle);
  }
  PAMO_ENSURES(solved_over_all_rows(),
               "update leaves a solved system over every kept row");
}

bool GpRegressor::try_incremental_update(std::size_t new_rows) {
  const std::size_t n_old = x_.size();
  std::vector<std::vector<double>> scaled;
  scaled.reserve(new_rows);
  for (std::size_t i = 0; i < new_rows; ++i) {
    scaled.push_back(scale_input(x_raw_[n_old + i]));
  }

  la::Matrix cross(new_rows, n_old, 0.0);
  for (std::size_t r = 0; r < new_rows; ++r) {
    for (std::size_t j = 0; j < n_old; ++j) {
      cross(r, j) = kernel_value(options_.kernel, params_, scaled[r], x_[j]);
    }
  }
  la::Matrix corner = kernel_matrix(options_.kernel, params_, scaled);
  const double noise = std::exp(params_.log_noise_var);
  for (std::size_t i = 0; i < new_rows; ++i) {
    corner(i, i) += noise;  // fresh rows always have noise_scale 1
  }
  if (!chol_->extend(cross, corner)) return false;

  for (auto& row : scaled) x_.push_back(std::move(row));
  noise_scale_.insert(noise_scale_.end(), new_rows, 1.0);

  // Re-standardize the targets over the grown set — exactly the rebuild
  // arithmetic — and re-solve against the extended factor: O(n) + O(n²)
  // against the rebuild's O(n³) refactorization.
  const std::size_t n = x_.size();
  y_mean_ = mean_of(y_raw_);
  y_std_ = stddev_of(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets: keep scale sane
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;
  alpha_ = chol_->solve(y_);
  return true;
}

void GpRegressor::rebuild(bool optimize_hyperparams) {
  PAMO_SPAN("gp.rebuild");
  PAMO_COUNT("gp.rebuilds", 1);
  const std::size_t n = x_raw_.size();

  // Input scaling.
  x_lo_.assign(dim_, std::numeric_limits<double>::max());
  x_hi_.assign(dim_, std::numeric_limits<double>::lowest());
  for (const auto& row : x_raw_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      x_lo_[i] = std::min(x_lo_[i], row[i]);
      x_hi_[i] = std::max(x_hi_[i], row[i]);
    }
  }
  x_.clear();
  x_.reserve(n);
  for (const auto& row : x_raw_) x_.push_back(scale_input(row));

  // Target standardization.
  y_mean_ = mean_of(y_raw_);
  y_std_ = stddev_of(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets: keep scale sane
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;

  if (options_.fixed_params.has_value()) {
    params_ = *options_.fixed_params;
    PAMO_CHECK(params_.dim() == dim_, "fixed hyperparameter dim mismatch");
  } else if (optimize_hyperparams || params_.dim() != dim_) {
    // MLE over [lengthscales, signal var, noise var] in log space.
    opt::Box box;
    const std::size_t p = dim_ + 2;
    box.lo.assign(p, 0.0);
    box.hi.assign(p, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      box.lo[i] = std::log(0.03);  // inputs are scaled to [0,1]
      box.hi[i] = std::log(10.0);
    }
    box.lo[dim_] = std::log(0.05);  // signal variance (standardized y)
    box.hi[dim_] = std::log(20.0);
    box.lo[dim_ + 1] = std::log(options_.min_noise_var);
    box.hi[dim_ + 1] = std::log(1.0);

    // MLE on a strided subsample when the training set is large — the
    // marginal likelihood is O(n³) per evaluation.
    std::vector<std::vector<double>> mle_x;
    std::vector<double> mle_y;
    const std::size_t cap = options_.mle_subsample;
    if (cap > 0 && n > cap) {
      const double stride = static_cast<double>(n) / static_cast<double>(cap);
      for (std::size_t i = 0; i < cap; ++i) {
        const auto idx = static_cast<std::size_t>(
            static_cast<double>(i) * stride);
        mle_x.push_back(x_[idx]);
        mle_y.push_back(y_[idx]);
      }
    } else {
      mle_x = x_;
      mle_y = y_;
    }
    auto objective = [&](const std::vector<double>& packed) {
      const KernelParams candidate = KernelParams::unpack(packed, dim_);
      return -lml_on(mle_x, mle_y, candidate);
    };

    KernelParams init;
    init.log_lengthscales.assign(dim_, std::log(0.3));
    init.log_signal_var = 0.0;
    init.log_noise_var = std::log(1e-2);
    const std::vector<double> x0 = init.pack();

    opt::NelderMeadOptions nm;
    nm.max_evals = options_.mle_max_evals;
    const opt::OptResult best = opt::multistart_minimize(
        objective, box, options_.mle_restarts, options_.seed, &x0, nm);
    params_ = KernelParams::unpack(best.x, dim_);
  }

  if (options_.drift_cusum_h > 0.0 && noise_scale_.size() <= n) {
    // Drift downweights are not re-derivable from the data (unlike robust
    // outlier weights), so a full rebuild keeps them and extends with 1.0
    // for the fresh rows. fit() clears the scales first: a refit is a
    // fresh start.
    noise_scale_.resize(n, 1.0);
  } else {
    noise_scale_.assign(n, 1.0);
  }
  solve_system();
  if (options_.robust_noise) {
    for (std::size_t round = 0; round < options_.robust_rounds; ++round) {
      if (!reweight_outliers()) break;
    }
  }
}

void GpRegressor::refit_keep_noise(std::size_t new_rows) {
  PAMO_SPAN("gp.refit_keep_noise");
  const std::size_t n = x_raw_.size();
  // Same scaling/standardization arithmetic as rebuild(), over all rows.
  x_lo_.assign(dim_, std::numeric_limits<double>::max());
  x_hi_.assign(dim_, std::numeric_limits<double>::lowest());
  for (const auto& row : x_raw_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      x_lo_[i] = std::min(x_lo_[i], row[i]);
      x_hi_[i] = std::max(x_hi_[i], row[i]);
    }
  }
  x_.clear();
  x_.reserve(n);
  for (const auto& row : x_raw_) x_.push_back(scale_input(row));
  y_mean_ = mean_of(y_raw_);
  y_std_ = stddev_of(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets: keep scale sane
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;
  noise_scale_.insert(noise_scale_.end(), new_rows, 1.0);
  PAMO_CHECK(noise_scale_.size() == n, "noise scales cover every row");
  solve_system();
  if (options_.robust_noise) {
    for (std::size_t round = 0; round < options_.robust_rounds; ++round) {
      if (!reweight_outliers()) break;
    }
  }
}

void GpRegressor::solve_system() {
  if (options_.backend == GpBackend::kInducing) {
    solve_sparse();
    return;
  }
  la::Matrix k = kernel_matrix(options_.kernel, params_, x_);
  const double noise = std::exp(params_.log_noise_var);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    k(i, i) += noise * noise_scale_[i];
  }
  // Degrade to a wider jitter cap instead of throwing: a near-singular
  // training covariance (duplicated inputs, heavily inflated outlier rows)
  // yields a smoother posterior rather than a dead learner.
  constexpr double kJitterLadder[] = {1e-4, 1e-2, 1.0};
  constexpr std::size_t kAttempts = 3;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      chol_.emplace(k, kJitterLadder[attempt]);
      break;
    } catch (const Error&) {
      if (attempt + 1 >= kAttempts) throw;
      ++diagnostics_.cholesky_recoveries;
    }
  }
  diagnostics_.fit_jitter = std::max(diagnostics_.fit_jitter, chol_->jitter());
  alpha_ = chol_->solve(y_);
  ++factor_epoch_;  // full refactorization: cached V rows are now stale
}

bool GpRegressor::reweight_outliers() {
  const double noise = std::exp(params_.log_noise_var);
  bool changed = false;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    const double var_i = noise * noise_scale_[i];
    // At the training points the posterior mean is y − Σnoise·α, so the
    // residual is var_i·α_i and its standardized form is √var_i·α_i.
    const double z = std::sqrt(var_i) * alpha_[i];
    if (std::fabs(z) <= options_.robust_threshold) continue;
    const double ratio = std::fabs(z) / options_.robust_threshold;
    const double target = std::min(options_.robust_inflation_cap,
                                   noise_scale_[i] * ratio * ratio);
    if (target > noise_scale_[i]) {
      // Scale is exactly 1.0 until the first inflation: this counts each
      // point at most once across the reweighting rounds.
      if (noise_scale_[i] == 1.0) ++diagnostics_.outliers_downweighted;  // pamo-lint: allow(float-eq)
      noise_scale_[i] = target;
      changed = true;
    }
  }
  if (changed) solve_system();
  return changed;
}

double GpRegressor::lml_on(const std::vector<std::vector<double>>& xs,
                           const std::vector<double>& ys,
                           const KernelParams& params) const {
  la::Matrix k = kernel_matrix(options_.kernel, params, xs);
  k.add_diagonal(std::exp(params.log_noise_var));
  try {
    const la::Cholesky chol(k);
    const la::Vector alpha = chol.solve(ys);
    const double fit_term = la::dot(ys, alpha);
    const auto n = static_cast<double>(xs.size());
    return -0.5 * (fit_term + chol.log_det() + n * kLog2Pi);
  } catch (const Error&) {
    return -std::numeric_limits<double>::max();
  }
}

double GpRegressor::log_marginal_likelihood(const KernelParams& params) const {
  PAMO_CHECK(!x_.empty(), "log_marginal_likelihood before fit");
  return lml_on(x_, y_, params);
}

double GpRegressor::predict_mean(const std::vector<double>& x) const {
  PAMO_CHECK(is_fit(), "predict before fit");
  const std::vector<double> xs = scale_input(x);
  double sum = 0.0;
  if (sparse_.has_value()) {
    for (std::size_t j = 0; j < sparse_->z.size(); ++j) {
      sum += kernel_value(options_.kernel, params_, xs, sparse_->z[j]) *
             sparse_->alpha[j];
    }
  } else {
    for (std::size_t i = 0; i < x_.size(); ++i) {
      sum += kernel_value(options_.kernel, params_, xs, x_[i]) * alpha_[i];
    }
  }
  return y_mean_ + y_std_ * sum;
}

double GpRegressor::predict_var(const std::vector<double>& x) const {
  PAMO_CHECK(is_fit(), "predict before fit");
  const std::vector<double> xs = scale_input(x);
  const double prior = std::exp(params_.log_signal_var);
  if (sparse_.has_value()) {
    const std::size_t m = sparse_->z.size();
    la::Vector kstar(m);
    for (std::size_t j = 0; j < m; ++j) {
      kstar[j] = kernel_value(options_.kernel, params_, xs, sparse_->z[j]);
    }
    // DTC: k** − k*ₘ Kmm⁻¹ kₘ* + k*ₘ B⁻¹ kₘ*.
    const la::Vector v1 = sparse_->lm->solve_lower(kstar);
    const la::Vector v2 = sparse_->lb->solve_lower(kstar);
    const double var = prior - la::dot(v1, v1) + la::dot(v2, v2);
    return std::max(0.0, var) * y_std_ * y_std_;
  }
  la::Vector kstar(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    kstar[i] = kernel_value(options_.kernel, params_, xs, x_[i]);
  }
  const la::Vector v = chol_->solve_lower(kstar);
  const double var = prior - la::dot(v, v);
  return std::max(0.0, var) * y_std_ * y_std_;
}

void GpRegressor::refresh_posterior_workspace(
    std::vector<std::vector<double>>&& xs) const {
  const std::size_t n = x_.size();
  const std::uint64_t key = fingerprint_rows(xs);
  const bool same_query = options_.incremental && workspace_.valid &&
                          workspace_.key == key && workspace_.xs == xs;
  if (same_query && workspace_.factor_epoch == factor_epoch_ &&
      workspace_.train_rows <= n) {
    if (workspace_.train_rows == n) return;  // fully current
    // The factor was extended in place since the workspace was built:
    // append the new columns of K* and continue the forward substitution
    // for the new rows of V. Existing entries are untouched, so the
    // result is bit-identical to recomputing against the grown set.
    const std::size_t m = xs.size();
    const std::size_t n_prev = workspace_.train_rows;
    const la::Matrix& l = chol_->lower();
    la::Matrix k_cross(m, n, 0.0);
    la::Matrix v(n, m, 0.0);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t j = 0; j < n_prev; ++j) {
        k_cross(c, j) = workspace_.k_cross(c, j);
        v(j, c) = workspace_.v(j, c);
      }
      for (std::size_t j = n_prev; j < n; ++j) {
        k_cross(c, j) =
            kernel_value(options_.kernel, params_, workspace_.xs[c], x_[j]);
      }
    }
    for (std::size_t i = n_prev; i < n; ++i) {
      for (std::size_t c = 0; c < m; ++c) {
        double sum = k_cross(c, i);
        for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * v(k, c);
        v(i, c) = sum / l(i, i);
      }
    }
    workspace_.k_cross = std::move(k_cross);
    workspace_.v = std::move(v);
    workspace_.train_rows = n;
    return;
  }
  // Full recompute (new query set, disabled cache, or a refactorized
  // system). k_test depends only on the query rows but is rebuilt here
  // anyway — it is the cheap part, and this keeps the workspace an
  // all-or-nothing snapshot.
  workspace_.k_cross = kernel_cross(options_.kernel, params_, xs, x_);
  workspace_.k_test = kernel_matrix(options_.kernel, params_, xs);
  workspace_.v = chol_->solve_lower(workspace_.k_cross.transposed());
  workspace_.xs = std::move(xs);
  workspace_.key = key;
  workspace_.factor_epoch = factor_epoch_;
  workspace_.train_rows = n;
  workspace_.valid = true;
}

Posterior GpRegressor::posterior(
    const std::vector<std::vector<double>>& x) const {
  PAMO_SPAN("gp.posterior");
  PAMO_COUNT("gp.posteriors", 1);
  PAMO_CHECK(is_fit(), "posterior before fit");
  const std::size_t m = x.size();
  PAMO_CHECK(m > 0, "posterior over an empty set");
  std::vector<std::vector<double>> xs;
  xs.reserve(m);
  for (const auto& row : x) xs.push_back(scale_input(row));
  if (sparse_.has_value()) {
    Posterior post = sparse_posterior(xs);
    PAMO_ENSURES(post.mean.size() == m && post.covariance.rows() == m &&
                     post.covariance.cols() == m,
                 "posterior is square over the query set");
    return post;
  }
  refresh_posterior_workspace(std::move(xs));
  const PosteriorWorkspace& ws = workspace_;

  const std::size_t n = x_.size();
  Posterior post;
  post.mean.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += ws.k_cross(i, j) * alpha_[j];
    post.mean[i] = y_mean_ + y_std_ * sum;
  }

  // cov = K** - K*ᵀ (K + σ²I)⁻¹ K* = K** - VᵀV with V = L⁻¹ K*ᵀ. The
  // blocked product accumulates r-ascending per element, so VᵀV is exactly
  // symmetric and matches the naive triangle loop term-for-term.
  const la::Matrix vtv = la::matmul_blocked(ws.v.transposed(), ws.v);
  post.covariance = la::Matrix(m, m);
  const double scale2 = y_std_ * y_std_;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      post.covariance(i, j) = (ws.k_test(i, j) - vtv(i, j)) * scale2;
    }
  }
  PAMO_ENSURES(post.mean.size() == m && post.covariance.rows() == m &&
                   post.covariance.cols() == m,
               "posterior is square over the query set");
  return post;
}

la::Matrix GpRegressor::sample_joint(const std::vector<std::vector<double>>& x,
                                     std::size_t num_samples, Rng& rng) const {
  PAMO_EXPECTS(num_samples > 0, "sample_joint of zero samples");
  // Draw every normal serially in sample-major order — the exact sequence
  // the historical all-serial loop consumed — then run the deterministic
  // colouring transform (possibly in parallel) on top.
  la::Matrix z(num_samples, x.size());
  for (std::size_t s = 0; s < num_samples; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) z(s, i) = rng.normal();
  }
  return sample_joint_given(x, z);
}

la::Matrix GpRegressor::sample_joint_given(
    const std::vector<std::vector<double>>& x, const la::Matrix& z) const {
  const std::size_t m = x.size();
  const std::size_t num_samples = z.rows();
  PAMO_EXPECTS(num_samples > 0, "sample_joint of zero samples");
  PAMO_CHECK(z.cols() == m, "normals/query-set size mismatch");
  const Posterior post = posterior(x);
  // Small jitter for numerical PSD-ness of the posterior covariance.
  const la::Cholesky chol(post.covariance, options_.posterior_max_jitter);
  diagnostics_.posterior_jitter =
      std::max(diagnostics_.posterior_jitter, chol.jitter());
  la::Matrix samples(num_samples, m);
  // Each sample is a pure function of its own z row, L, and the mean:
  // rows are written disjointly and in a fixed per-row order, so the
  // fan-out is bit-identical at any thread count. The grain keeps small
  // batches (the common tiny-grid case) entirely inline.
  const std::size_t grain = std::max<std::size_t>(1, 32768 / (m * m + 1));
  parallel_for(
      num_samples,
      [&](std::size_t s) {
        for (std::size_t i = 0; i < m; ++i) {
          double sum = post.mean[i];
          for (std::size_t j = 0; j <= i; ++j) {
            sum += chol.lower()(i, j) * z(s, j);
          }
          samples(s, i) = sum;
        }
      },
      grain);
  return samples;
}

}  // namespace pamo::gp
