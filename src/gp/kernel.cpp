#include "gp/kernel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pamo::gp {

std::vector<double> KernelParams::pack() const {
  std::vector<double> packed = log_lengthscales;
  packed.push_back(log_signal_var);
  packed.push_back(log_noise_var);
  return packed;
}

KernelParams KernelParams::unpack(const std::vector<double>& packed,
                                  std::size_t dim) {
  PAMO_CHECK(packed.size() == dim + 2, "packed hyperparameter size mismatch");
  KernelParams p;
  p.log_lengthscales.assign(packed.begin(),
                            packed.begin() + static_cast<long>(dim));
  p.log_signal_var = packed[dim];
  p.log_noise_var = packed[dim + 1];
  return p;
}

namespace {

/// Scaled squared distance Σ ((x_i - z_i) / ℓ_i)².
double scaled_sqdist(const KernelParams& params, const std::vector<double>& x,
                     const std::vector<double>& z) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double inv_ls = std::exp(-params.log_lengthscales[i]);
    const double d = (x[i] - z[i]) * inv_ls;
    sum += d * d;
  }
  return sum;
}

double kernel_from_sqdist(KernelType type, double sf2, double r2) {
  switch (type) {
    case KernelType::kRbf:
      return sf2 * std::exp(-0.5 * r2);
    case KernelType::kMatern52: {
      const double r = std::sqrt(r2);
      const double sqrt5_r = 2.2360679774997896 * r;
      return sf2 * (1.0 + sqrt5_r + 5.0 / 3.0 * r2) * std::exp(-sqrt5_r);
    }
  }
  return 0.0;  // unreachable
}

}  // namespace

double kernel_value(KernelType type, const KernelParams& params,
                    const std::vector<double>& x,
                    const std::vector<double>& z) {
  PAMO_CHECK(x.size() == params.dim() && z.size() == params.dim(),
             "kernel input dimension mismatch");
  const double sf2 = std::exp(params.log_signal_var);
  return kernel_from_sqdist(type, sf2, scaled_sqdist(params, x, z));
}

la::Matrix kernel_matrix(KernelType type, const KernelParams& params,
                         const std::vector<std::vector<double>>& x) {
  PAMO_CHECK(x.empty() || x.front().size() == params.dim(),
             "kernel input dimension mismatch");
  const std::size_t n = x.size();
  const double sf2 = std::exp(params.log_signal_var);
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = sf2;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v =
          kernel_from_sqdist(type, sf2, scaled_sqdist(params, x[i], x[j]));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

la::Matrix kernel_cross(KernelType type, const KernelParams& params,
                        const std::vector<std::vector<double>>& x,
                        const std::vector<std::vector<double>>& z) {
  const double sf2 = std::exp(params.log_signal_var);
  la::Matrix k(x.size(), z.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < z.size(); ++j) {
      k(i, j) =
          kernel_from_sqdist(type, sf2, scaled_sqdist(params, x[i], z[j]));
    }
  }
  return k;
}

}  // namespace pamo::gp
