#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace pamo {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PAMO_CHECK(!headers_.empty(), "table requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PAMO_CHECK(cells.size() == headers_.size(),
             "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row_values(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(format_double(c, precision));
  add_row(std::move(formatted));
}

void TablePrinter::write_csv(std::ostream& os) const {
  auto write_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char c : cell) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      write_cell(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  os.flush();
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace pamo
