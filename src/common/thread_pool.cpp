#include "common/thread_pool.hpp"

#include <exception>
#include <memory>

#include "common/error.hpp"

namespace pamo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_blocks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, size()) * 4);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;

  // Single-threaded pools (or tiny n) run inline — no synchronization cost.
  if (size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion state is owned jointly by the waiter and every task (via
  // shared_ptr), not borrowed from the waiter's stack: the waiter may
  // observe remaining == 0 and return while the final task is still
  // between its decrement and its last use of the mutex/condvar, so
  // stack-owned state would be destroyed under that task's feet. The
  // decrement happens under the state mutex for the same reason.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr first_error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = (n + block - 1) / block;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += block) {
      const std::size_t end = std::min(n, begin + block);
      tasks_.emplace([batch, &fn, begin, end] {
        std::exception_ptr error;
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> block_lock(batch->mutex);
        if (error && !batch->first_error) batch->first_error = error;
        if (--batch->remaining == 0) batch->done.notify_one();
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace pamo
