#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace pamo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_blocks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, size()) * 4);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;

  // Single-threaded pools (or tiny n) run inline — no synchronization cost.
  if (size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += block) {
      const std::size_t end = std::min(n, begin + block);
      ++launched;
      tasks_.emplace([&, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            launched) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] {
    return remaining.load(std::memory_order_acquire) == launched;
  });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace pamo
