#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/error.hpp"

namespace pamo {

namespace {

// Set for the lifetime of every pool worker thread: a parallel_for issued
// from inside a worker must run inline, because parking that worker to wait
// on blocks only other (possibly equally-parked) workers can run would
// deadlock the pool.
thread_local bool t_inside_worker = false;

// Innermost ScopedDefault override; free parallel_for() falls back to the
// global pool when none is active. Overrides are process-wide: installing
// or removing one while other threads are inside free parallel_for() calls
// is the caller's race to avoid.
std::atomic<ThreadPool*> g_default_pool{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  const std::size_t max_blocks = std::max<std::size_t>(1, size()) * 4;
  const std::size_t num_blocks =
      std::min<std::size_t>((n + grain - 1) / grain, max_blocks);

  // Inline paths: single-worker pools, batches not worth a dispatch, and
  // calls from inside a worker (see t_inside_worker).
  if (size() <= 1 || num_blocks <= 1 || t_inside_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t block = (n + num_blocks - 1) / num_blocks;

  // Completion state is owned jointly by the waiter and every task (via
  // shared_ptr), not borrowed from the waiter's stack: the waiter may
  // observe blocks_finished == num_blocks and return while a late-starting
  // task is still between its failed claim and its own return, so
  // stack-owned state would be destroyed under that task's feet. `fn` is
  // captured by reference, which is safe for the same reason: a task that
  // outlives the waiter can no longer claim a block and never touches fn.
  struct Batch {
    std::atomic<std::size_t> next_block{0};
    std::atomic<bool> aborted{false};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t blocks_finished = 0;  // guarded by mutex
    std::size_t num_blocks = 0;
    std::exception_ptr first_error;  // guarded by mutex
  };
  auto batch = std::make_shared<Batch>();
  batch->num_blocks = num_blocks;

  // Every participant — helpers and the caller — claims blocks from the
  // shared counter until none remain. Block boundaries depend only on
  // (n, grain, pool size), never on which thread claims what, so the set
  // of fn(i) calls is identical at any thread count.
  auto run_blocks = [batch, &fn, n, block] {
    for (;;) {
      const std::size_t b =
          batch->next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= batch->num_blocks) return;
      std::exception_ptr error;
      if (!batch->aborted.load(std::memory_order_relaxed)) {
        try {
          const std::size_t begin = b * block;
          const std::size_t end = std::min(n, begin + block);
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> block_lock(batch->mutex);
      if (error) {
        if (!batch->first_error) batch->first_error = error;
        batch->aborted.store(true, std::memory_order_relaxed);
      }
      if (++batch->blocks_finished == batch->num_blocks) {
        batch->done.notify_all();
      }
    }
  };

  // Enough helpers that every worker can pitch in, but never more tasks
  // than blocks beyond the caller's own share.
  const std::size_t helpers = std::min(size(), num_blocks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) tasks_.emplace(run_blocks);
  }
  cv_.notify_all();

  run_blocks();

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock,
                   [&] { return batch->blocks_finished == batch->num_blocks; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::current() {
  ThreadPool* pool = g_default_pool.load(std::memory_order_acquire);
  return pool != nullptr ? *pool : global();
}

ThreadPool::ScopedDefault::ScopedDefault(ThreadPool& pool)
    : previous_(g_default_pool.exchange(&pool, std::memory_order_acq_rel)) {}

ThreadPool::ScopedDefault::~ScopedDefault() {
  g_default_pool.store(previous_, std::memory_order_release);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  ThreadPool::current().parallel_for(n, fn, grain);
}

}  // namespace pamo
