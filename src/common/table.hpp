// ASCII table printing for the benchmark harnesses.
//
// Every figure/table bench prints its series through TablePrinter so the
// output can be diffed against EXPERIMENTS.md and eyeballed next to the
// paper's plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pamo {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  void add_row_values(const std::vector<double>& cells, int precision = 4);

  /// Render with column alignment, a header rule, and an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Write RFC-4180-style CSV (quoting fields containing commas, quotes,
  /// or newlines) — for plotting bench output.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed-type rows).
std::string format_double(double value, int precision = 4);

}  // namespace pamo
