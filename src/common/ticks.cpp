#include "common/ticks.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace pamo {

std::uint64_t monotonic_ns() {
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}

std::uint64_t gcd_of(const std::vector<std::uint64_t>& values) {
  PAMO_CHECK(!values.empty(), "gcd_of requires a non-empty list");
  std::uint64_t g = 0;
  for (std::uint64_t v : values) {
    PAMO_CHECK(v > 0, "gcd_of requires positive values");
    g = std::gcd(g, v);
  }
  return g;
}

std::uint64_t lcm_of(const std::vector<std::uint64_t>& values) {
  PAMO_CHECK(!values.empty(), "lcm_of requires a non-empty list");
  std::uint64_t l = 1;
  for (std::uint64_t v : values) {
    PAMO_CHECK(v > 0, "lcm_of requires positive values");
    const std::uint64_t g = std::gcd(l, v);
    const std::uint64_t factor = v / g;
    PAMO_CHECK(l <= std::numeric_limits<std::uint64_t>::max() / factor,
               "lcm_of overflow");
    l *= factor;
  }
  return l;
}

TickClock::TickClock(const std::vector<std::uint32_t>& fps_knobs) {
  PAMO_CHECK(!fps_knobs.empty(), "TickClock requires at least one fps knob");
  std::vector<std::uint64_t> v;
  v.reserve(fps_knobs.size());
  for (auto f : fps_knobs) {
    PAMO_CHECK(f > 0, "fps knobs must be positive");
    v.push_back(f);
  }
  tps_ = lcm_of(v);
}

std::uint64_t TickClock::period_ticks(std::uint32_t fps) const {
  PAMO_CHECK(fps > 0, "fps must be positive");
  PAMO_CHECK(tps_ % fps == 0,
             "fps is not compatible with this TickClock (tps % fps != 0)");
  return tps_ / fps;
}

double TickClock::to_seconds(std::uint64_t ticks) const {
  return static_cast<double>(ticks) / static_cast<double>(tps_);
}

std::uint64_t TickClock::ceil_ticks(double seconds) const {
  PAMO_CHECK(seconds >= 0.0, "duration must be non-negative");
  const double ticks = seconds * static_cast<double>(tps_);
  PAMO_CHECK(ticks < 9.2e18, "duration too large for tick representation");
  return static_cast<std::uint64_t>(std::ceil(ticks - 1e-9));
}

}  // namespace pamo
