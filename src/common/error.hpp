// Error handling primitives shared by every pamo library.
//
// Invariant violations inside the libraries throw pamo::Error (a
// std::runtime_error) so callers can distinguish library failures from
// standard-library failures. PAMO_CHECK is for recoverable precondition
// violations on public API boundaries; PAMO_ASSERT is for internal
// invariants and compiles to a check in all build types (the cost is
// negligible next to the numerical work).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pamo {

/// Exception type thrown on precondition or invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace pamo

#define PAMO_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pamo::detail::raise("precondition", #cond, __FILE__, __LINE__,     \
                            (msg));                                        \
    }                                                                      \
  } while (false)

#define PAMO_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pamo::detail::raise("invariant", #cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)
