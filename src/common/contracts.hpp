// Contract macros for the public entry points of the pamo libraries.
//
// PAMO_EXPECTS states a precondition, PAMO_ENSURES a postcondition. Both
// are runtime-checked (throwing pamo::Error with the contract text and
// location) when the build defines PAMO_CONTRACT_CHECKS — the Debug and
// sanitizer lanes do (see PAMO_CONTRACTS in the top-level CMakeLists) —
// and compile to nothing in release builds, so hot paths pay zero cost.
//
// Relationship to PAMO_CHECK/PAMO_ASSERT (common/error.hpp): those are
// *always on* and guard conditions callers are allowed to get wrong at
// runtime (and that tests exercise in release builds). Contracts document
// and enforce interface obligations that correct callers always satisfy —
// dimension agreement, size invariants of returned structures — where a
// violation is a bug in this repo, not bad input.
//
// The disabled form still odr-uses the condition inside an `if (false)`
// so contract expressions cannot bit-rot out of compilability, and any
// variable referenced only by a contract stays "used" under -Werror.
#pragma once

#include "common/error.hpp"

#if defined(PAMO_CONTRACT_CHECKS)

#define PAMO_EXPECTS(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pamo::detail::raise("contract [expects]", #cond, __FILE__,          \
                            __LINE__, (msg));                               \
    }                                                                       \
  } while (false)

#define PAMO_ENSURES(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::pamo::detail::raise("contract [ensures]", #cond, __FILE__,          \
                            __LINE__, (msg));                               \
    }                                                                       \
  } while (false)

#else

#define PAMO_EXPECTS(cond, msg)                                             \
  do {                                                                      \
    if (false) {                                                            \
      static_cast<void>(cond);                                              \
      static_cast<void>(msg);                                               \
    }                                                                       \
  } while (false)

#define PAMO_ENSURES(cond, msg)                                             \
  do {                                                                      \
    if (false) {                                                            \
      static_cast<void>(cond);                                              \
      static_cast<void>(msg);                                               \
    }                                                                       \
  } while (false)

#endif  // PAMO_CONTRACT_CHECKS
