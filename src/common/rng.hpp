// Deterministic, forkable random number generation.
//
// Every stochastic component in pamo receives an explicit Rng (or a seed) —
// there is no global generator. Rng wraps xoshiro256**, seeded through
// SplitMix64 as recommended by its authors. Rng::fork(i) derives an
// independent stream for parallel work: results are identical regardless of
// the number of worker threads because each logical work item gets the
// stream derived from its *index*, not from its thread.
#pragma once

#include <cstdint>
#include <vector>

namespace pamo {

/// SplitMix64 — used for seeding and stream derivation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Complete serializable state of an Rng: the xoshiro256** words plus the
/// Box–Muller spare. Round-tripping through RngState resumes the stream
/// mid-sequence bit-for-bit (including a cached normal() spare).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double spare = 0.0;
  bool has_spare = false;
};

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Snapshot the generator state (checkpoint/restore support).
  [[nodiscard]] RngState state() const;
  /// Rebuild a generator that continues `state`'s stream exactly.
  static Rng from_state(const RngState& state);

  /// Derive an independent stream for work item `index`. Deterministic:
  /// fork(i) of equal-state Rngs yields equal streams.
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Standard normal via Box–Muller (cached spare).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // UniformRandomBitGenerator interface (for std::shuffle interop).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pamo
