// Low-discrepancy sequences for space-filling candidate generation.
//
// Bayesian-optimization candidate pools want better-than-random coverage of
// the (up to ~40-dimensional) joint configuration space. We use a
// randomized (digit-permuted) Halton sequence: valid in any dimension, no
// direction-number tables required, and the per-dimension random digit
// permutations break the correlation artifacts of plain Halton in higher
// dimensions. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pamo {

/// Randomized-Halton generator producing points in the unit hypercube.
class HaltonSequence {
 public:
  /// @param dim   dimensionality of generated points (>= 1).
  /// @param seed  seed for the digit-scrambling permutations.
  HaltonSequence(std::size_t dim, std::uint64_t seed);

  /// Next point in [0,1)^dim.
  std::vector<double> next();

  /// Generate `n` points at once (rows of the result).
  std::vector<std::vector<double>> take(std::size_t n);

  [[nodiscard]] std::size_t dim() const { return bases_.size(); }

 private:
  double scrambled_radical_inverse(std::size_t d, std::uint64_t index) const;

  std::vector<std::uint32_t> bases_;
  // perms_[d] holds a permutation of {0, ..., base_d - 1}; digit 0 is pinned
  // so leading zeros do not shift the value.
  std::vector<std::vector<std::uint32_t>> perms_;
  std::uint64_t index_ = 0;
};

/// First `n` primes (used as Halton bases). Exposed for testing.
std::vector<std::uint32_t> first_primes(std::size_t n);

}  // namespace pamo
