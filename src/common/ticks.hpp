// Exact period arithmetic for periodic stream scheduling.
//
// The zero-jitter constraint (Const2, Eq. 7 of the paper) needs
// gcd(T_1, ..., T_K) over frame periods T_i = 1/fps_i. Floating-point gcd
// is ill-defined, so periods are represented as integer counts of a *tick*:
// 1 tick = 1 / lcm(all admissible fps values) seconds. Every knob's period
// is then an exact integer and gcd/divisibility checks are exact.
#pragma once

#include <cstdint>
#include <vector>

namespace pamo {

/// Greatest common divisor of a non-empty list (all values > 0).
std::uint64_t gcd_of(const std::vector<std::uint64_t>& values);

/// Least common multiple of a non-empty list (all values > 0).
/// Throws on overflow.
std::uint64_t lcm_of(const std::vector<std::uint64_t>& values);

/// Monotonic timestamp in integer nanoseconds since an arbitrary process
/// epoch. This is the *only* sanctioned time source outside src/obs: it is
/// monotonic (never wall-clock, never adjusted), so reading it cannot leak
/// nondeterminism into decisions, and pamo_lint's wall-clock rule bans the
/// raw std::chrono clocks everywhere else. Timing consumers (obs::Span,
/// bo::EpochWatchdog, benches) difference two reads.
std::uint64_t monotonic_ns();

/// Converts between fps knobs and integer tick periods.
class TickClock {
 public:
  /// @param fps_knobs admissible frame rates (positive integers).
  explicit TickClock(const std::vector<std::uint32_t>& fps_knobs);

  /// Ticks per second: lcm of all fps knobs.
  [[nodiscard]] std::uint64_t ticks_per_second() const { return tps_; }

  /// Period, in ticks, of a stream at the given fps (must be a knob or a
  /// divisor-compatible rate: tps % fps == 0).
  [[nodiscard]] std::uint64_t period_ticks(std::uint32_t fps) const;

  /// Duration of `ticks` ticks in seconds.
  [[nodiscard]] double to_seconds(std::uint64_t ticks) const;

  /// Smallest number of whole ticks >= `seconds` (for processing times).
  [[nodiscard]] std::uint64_t ceil_ticks(double seconds) const;

 private:
  std::uint64_t tps_;
};

}  // namespace pamo
