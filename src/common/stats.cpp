#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pamo {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  PAMO_CHECK(n_ > 0, "mean of empty RunningStat");
  return mean_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  PAMO_CHECK(n_ > 0, "min of empty RunningStat");
  return min_;
}

double RunningStat::max() const {
  PAMO_CHECK(n_ > 0, "max of empty RunningStat");
  return max_;
}

double quantile(std::vector<double> values, double q) {
  PAMO_CHECK(!values.empty(), "quantile of empty sample");
  PAMO_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  PAMO_CHECK(!values.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& predicted) {
  PAMO_CHECK(truth.size() == predicted.size() && !truth.empty(),
             "r_squared requires equal-length non-empty inputs");
  const double m = mean_of(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 1e-300) return ss_res <= 1e-300 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace pamo
