#include "common/quasi.hpp"

#include <numeric>

#include "common/error.hpp"

namespace pamo {

std::vector<std::uint32_t> first_primes(std::size_t n) {
  std::vector<std::uint32_t> primes;
  primes.reserve(n);
  std::uint32_t candidate = 2;
  while (primes.size() < n) {
    bool is_prime = true;
    for (std::uint32_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

HaltonSequence::HaltonSequence(std::size_t dim, std::uint64_t seed) {
  PAMO_CHECK(dim >= 1, "HaltonSequence dimension must be >= 1");
  bases_ = first_primes(dim);
  perms_.resize(dim);
  Rng rng(seed);
  for (std::size_t d = 0; d < dim; ++d) {
    const std::uint32_t base = bases_[d];
    std::vector<std::uint32_t> perm(base);
    std::iota(perm.begin(), perm.end(), 0u);
    // Shuffle digits 1..base-1; keep 0 fixed so trailing zero digits do not
    // perturb the radical inverse.
    for (std::size_t i = base - 1; i > 1; --i) {
      std::size_t j = 1 + rng.uniform_index(i);
      std::swap(perm[i], perm[j]);
    }
    perms_[d] = std::move(perm);
  }
  // Skip index 0 (the all-zeros point) — it adds nothing to coverage.
  index_ = 1;
}

double HaltonSequence::scrambled_radical_inverse(std::size_t d,
                                                 std::uint64_t index) const {
  const std::uint64_t base = bases_[d];
  const auto& perm = perms_[d];
  double inv_base = 1.0 / static_cast<double>(base);
  double factor = inv_base;
  double value = 0.0;
  while (index > 0) {
    const auto digit = static_cast<std::uint32_t>(index % base);
    value += static_cast<double>(perm[digit]) * factor;
    index /= base;
    factor *= inv_base;
  }
  return value;
}

std::vector<double> HaltonSequence::next() {
  std::vector<double> point(bases_.size());
  for (std::size_t d = 0; d < bases_.size(); ++d) {
    point[d] = scrambled_radical_inverse(d, index_);
  }
  ++index_;
  return point;
}

std::vector<std::vector<double>> HaltonSequence::take(std::size_t n) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(next());
  return points;
}

}  // namespace pamo
