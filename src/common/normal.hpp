// Standard normal pdf/cdf helpers (shared by the probit preference
// likelihood and the expected-improvement acquisition functions).
#pragma once

namespace pamo {

/// Standard normal density φ(z).
double normal_pdf(double z);

/// Standard normal CDF Φ(z) via erfc (accurate in both tails).
double normal_cdf(double z);

/// log Φ(z), numerically stable for z << 0 (asymptotic expansion).
double log_normal_cdf(double z);

/// Hazard ratio φ(z)/Φ(z), stable for z << 0.
double normal_hazard(double z);

}  // namespace pamo
