#include "common/normal.hpp"

#include <cmath>

namespace pamo {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;
}  // namespace

double normal_pdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double normal_cdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double log_normal_cdf(double z) {
  if (z > -8.0) {
    return std::log(normal_cdf(z));
  }
  // Asymptotic: Φ(z) ≈ φ(z)/|z| · (1 - 1/z² + 3/z⁴) for z << 0.
  const double z2 = z * z;
  const double series = 1.0 - 1.0 / z2 + 3.0 / (z2 * z2);
  return -0.5 * z2 - 0.5 * std::log(2.0 * M_PI) - std::log(-z) +
         std::log(series);
}

double normal_hazard(double z) {
  if (z > -8.0) {
    return normal_pdf(z) / normal_cdf(z);
  }
  // φ/Φ → -z + 1/(-z) · (1 + o(1)) for z << 0; three-term continued fraction.
  const double t = -z;
  return t + 1.0 / (t + 2.0 / (t + 3.0 / t));
}

}  // namespace pamo
