#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pamo {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

RngState Rng::state() const {
  RngState out;
  for (int i = 0; i < 4; ++i) out.s[i] = s_[i];
  out.spare = spare_;
  out.has_spare = has_spare_;
  return out;
}

Rng Rng::from_state(const RngState& state) {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.s_[i] = state.s[i];
  rng.spare_ = state.spare;
  rng.has_spare_ = state.has_spare;
  return rng;
}

Rng Rng::fork(std::uint64_t index) const {
  // Mix the current state with the stream index through SplitMix64 so that
  // distinct indices give well-separated streams.
  SplitMix64 sm(s_[0] ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  Rng child(0);
  for (auto& s : child.s_) s = sm.next();
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PAMO_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  PAMO_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24.
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) {
  PAMO_CHECK(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

}  // namespace pamo
