// Small statistics helpers used by the simulator and the bench harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace pamo {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample. q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Arithmetic mean; requires a non-empty input.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev_of(const std::vector<double>& values);

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
/// Returns 1.0 when SS_tot is ~0 and predictions match, else can be < 0.
double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& predicted);

}  // namespace pamo
