// Fixed-size thread pool with a deterministic parallel_for.
//
// parallel_for(n, fn) partitions [0, n) into contiguous blocks and runs
// fn(i) for every index. Work items must not depend on execution order;
// all pamo call sites either derive per-index RNG streams (Rng::fork) or
// consume pre-drawn randomness indexed by i, so results are bit-identical
// for any thread count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pamo {

class ThreadPool {
 public:
  /// @param num_threads  0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for every i in [0, n); blocks until all complete.
  ///
  /// `grain` is the minimum number of indices worth dispatching as one
  /// block: batches that fit in a single block (n <= grain), empty ranges,
  /// and single-worker pools run entirely inline on the caller with zero
  /// synchronization. The caller always participates in block processing
  /// (it is never parked while unclaimed blocks remain), and a call made
  /// from inside a pool worker runs inline, so nested parallel_for over
  /// the same pool cannot deadlock.
  ///
  /// Exceptions thrown by fn are captured and the first one rethrown here;
  /// once a block has thrown, blocks not yet started are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& global();

  /// Pool used by the free parallel_for(): the innermost active
  /// ScopedDefault override, else global().
  static ThreadPool& current();

  /// RAII override of the pool used by the free parallel_for() — lets
  /// tests and benches pin a thread count for everything downstream
  /// without threading a pool handle through every call site. Overrides
  /// nest; each restores the previous pool on destruction.
  class ScopedDefault {
   public:
    explicit ScopedDefault(ThreadPool& pool);
    ~ScopedDefault();

    ScopedDefault(const ScopedDefault&) = delete;
    ScopedDefault& operator=(const ScopedDefault&) = delete;

   private:
    ThreadPool* previous_;
  };

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience: parallel_for on ThreadPool::current().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace pamo
