// Fixed-size thread pool with a deterministic parallel_for.
//
// parallel_for(n, fn) partitions [0, n) into contiguous blocks and runs
// fn(i) for every index. Work items must not depend on execution order;
// all pamo call sites derive per-index RNG streams (Rng::fork) so results
// are bit-identical for any thread count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pamo {

class ThreadPool {
 public:
  /// @param num_threads  0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for every i in [0, n); blocks until all complete.
  /// Exceptions thrown by fn are captured and the first one rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience: parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace pamo
