// Classical fixed-weight scalarization schedulers (§1 and §6 of the
// paper): Equal weights, Rank-Order-Centroid (ROC) weights, Rank-Sum (RS)
// weights, and Pseudo-weights. Each turns the multi-objective problem into
// a single weighted sum over *normalized* objectives and greedily searches
// the configuration space under the zero-jitter scheduler.
//
// These are the "not flexible enough" strawmen the paper contrasts with
// preference learning: the weight vector is fixed by a formula over an
// assumed objective *ranking*, not by the system's actual pricing.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "baselines/baseline.hpp"
#include "eva/types.hpp"

namespace pamo::baselines {

enum class WeightScheme {
  kEqual,   // w_i = 1/k
  kRoc,     // w_i = (1/k) Σ_{j=i..k} 1/j over the assumed ranking
  kRankSum, // w_i = 2(k + 1 - i) / (k (k + 1))
  kPseudo,  // weights ∝ distance of each objective from its worst value,
            // estimated from a sample of feasible solutions
};

const char* weight_scheme_name(WeightScheme scheme);

/// Materialize the scheme's weight vector. `ranking[r]` is the objective
/// assumed to be the r-th most important (used by ROC and RankSum; Equal
/// ignores it). For kPseudo, weights must come from
/// pseudo_weights_from_samples instead.
std::array<double, eva::kNumObjectives> scheme_weights(
    WeightScheme scheme,
    const std::array<eva::Objective, eva::kNumObjectives>& ranking);

struct ScalarizerOptions {
  WeightScheme scheme = WeightScheme::kEqual;
  /// When set, overrides the scheme with explicit weights — the "oracle
  /// scalarizer" that knows the true preference. Benches use it to isolate
  /// the cost of weight misspecification from optimizer power.
  std::optional<std::array<double, eva::kNumObjectives>> explicit_weights;
  /// Assumed importance ranking (most important first). Default: the
  /// paper's objective order.
  std::array<eva::Objective, eva::kNumObjectives> ranking = {
      eva::Objective::kLatency, eva::Objective::kAccuracy,
      eva::Objective::kNetwork, eva::Objective::kCompute,
      eva::Objective::kEnergy};
  /// Feasible-solution samples used to estimate Pseudo-weights.
  std::size_t pseudo_samples = 64;
  /// Coordinate-descent passes over the streams.
  std::size_t max_passes = 6;
  std::uint64_t seed = 1;
};

/// Run the fixed-weight scalarizer: greedy coordinate descent over each
/// stream's (resolution, fps), scoring candidates with the scheme's fixed
/// weights over normalized outcomes, scheduling with Algorithm 1.
BaselineResult run_scalarizer(const eva::Workload& workload,
                              const ScalarizerOptions& options);

}  // namespace pamo::baselines
