// Shared result type of the baseline schedulers (§5.1).
#pragma once

#include "eva/workload.hpp"
#include "sched/scheduler.hpp"

namespace pamo::baselines {

struct BaselineResult {
  bool feasible = false;
  eva::JointConfig config;
  sched::ScheduleResult schedule;
  std::size_t iterations = 0;
};

}  // namespace pamo::baselines
