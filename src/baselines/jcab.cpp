#include "baselines/jcab.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "eva/profiler.hpp"

namespace pamo::baselines {

namespace {

/// Per-clip knob-grid profile with per-metric min/max for normalization.
struct ClipGrid {
  std::vector<eva::StreamConfig> knobs;
  std::vector<double> accuracy, energy, utilization, bandwidth;
  double acc_lo = 0, acc_hi = 0, eng_lo = 0, eng_hi = 0;
};

ClipGrid profile_clip(const eva::Workload& workload,
                      const eva::ClipProfile& clip) {
  ClipGrid grid;
  grid.acc_lo = 1e300;
  grid.acc_hi = -1e300;
  grid.eng_lo = 1e300;
  grid.eng_hi = -1e300;
  for (auto r : workload.space.resolutions()) {
    for (auto s : workload.space.fps_knobs()) {
      grid.knobs.push_back({r, s});
      const double acc = clip.accuracy(r, s);
      const double eng = clip.power_watts(r, s);
      grid.accuracy.push_back(acc);
      grid.energy.push_back(eng);
      grid.utilization.push_back(clip.proc_time(r) * s);
      grid.bandwidth.push_back(clip.bandwidth_mbps(r, s));
      grid.acc_lo = std::min(grid.acc_lo, acc);
      grid.acc_hi = std::max(grid.acc_hi, acc);
      grid.eng_lo = std::min(grid.eng_lo, eng);
      grid.eng_hi = std::max(grid.eng_hi, eng);
    }
  }
  return grid;
}

double unit(double v, double lo, double hi) {
  return hi > lo ? (v - lo) / (hi - lo) : 0.0;
}

}  // namespace

BaselineResult run_jcab(const eva::Workload& workload,
                        const JcabOptions& options) {
  PAMO_CHECK(options.lyapunov_v > 0, "Lyapunov V must be positive");
  const std::size_t num_streams = workload.num_streams();
  const std::size_t num_servers = workload.num_servers();

  std::vector<ClipGrid> grids;
  grids.reserve(num_streams);
  for (const auto& clip : workload.clips) {
    grids.push_back(profile_clip(workload, clip));
  }

  // Long-term capacities the virtual queues guard: total compute slots and
  // total uplink bandwidth (with a stability margin).
  const double compute_capacity = 0.9 * static_cast<double>(num_servers);
  double bandwidth_capacity = 0.0;
  for (double b : workload.uplink_mbps) bandwidth_capacity += b;
  bandwidth_capacity *= 0.9;

  double q_compute = 0.0;  // virtual queue: compute backlog
  double q_bandwidth = 0.0;

  BaselineResult result;
  double prev_objective = std::numeric_limits<double>::lowest();

  eva::JointConfig config(num_streams);
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.iterations;
    // Drift-plus-penalty configuration choice per stream.
    double objective = 0.0;
    double total_util = 0.0;
    double total_bw = 0.0;
    for (std::size_t i = 0; i < num_streams; ++i) {
      const ClipGrid& grid = grids[i];
      double best_score = std::numeric_limits<double>::lowest();
      std::size_t best_knob = 0;
      for (std::size_t k = 0; k < grid.knobs.size(); ++k) {
        const double penalty =
            options.w_accuracy *
                unit(grid.accuracy[k], grid.acc_lo, grid.acc_hi) -
            options.w_energy * unit(grid.energy[k], grid.eng_lo, grid.eng_hi);
        const double score = options.lyapunov_v * penalty -
                             q_compute * grid.utilization[k] -
                             q_bandwidth * grid.bandwidth[k];
        if (score > best_score) {
          best_score = score;
          best_knob = k;
        }
      }
      config[i] = grid.knobs[best_knob];
      objective +=
          options.w_accuracy *
              unit(grid.accuracy[best_knob], grid.acc_lo, grid.acc_hi) -
          options.w_energy *
              unit(grid.energy[best_knob], grid.eng_lo, grid.eng_hi);
      total_util += grid.utilization[best_knob];
      total_bw += grid.bandwidth[best_knob];
    }

    // First-Fit placement (Const1 only — JCAB does not know Const2).
    // Lyapunov scheduling acts per time slot: the *latest* feasible
    // decision is the one deployed (so an early termination threshold
    // genuinely changes the outcome).
    sched::ScheduleResult schedule =
        sched::schedule_first_fit(workload, config);
    if (schedule.feasible) {
      result.config = config;
      result.schedule = std::move(schedule);
      result.feasible = true;
    }
    if (!schedule.feasible) {
      // Couldn't even fit on Const1: pressure the compute queue hard so
      // the next round backs off.
      q_compute += static_cast<double>(num_servers);
    }

    // Virtual queue dynamics.
    q_compute = std::max(0.0, q_compute + total_util - compute_capacity);
    q_bandwidth = std::max(0.0, q_bandwidth + total_bw - bandwidth_capacity);

    if (round > 0 && result.feasible &&
        std::fabs(objective - prev_objective) <
            options.delta * static_cast<double>(num_streams)) {
      break;
    }
    prev_objective = objective;
  }
  return result;
}

}  // namespace pamo::baselines
