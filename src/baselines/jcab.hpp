// JCAB baseline (Zhang et al., IEEE/ACM ToN 2021 — reference [34]).
//
// JCAB makes video configuration (resolution, fps) and placement decisions
// with Lyapunov optimization: a drift-plus-penalty rule trades the
// single-slot penalty V·(w_acc·accuracy − w_eng·energy) against virtual
// queues that enforce the long-term compute and bandwidth capacity
// constraints. Placement is First-Fit. It is a *single-objective*
// scheduler with fixed linear weights: latency, bandwidth cost, and the
// zero-jitter constraint are outside its objective — exactly the blind
// spot the paper's evaluation exposes.
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"

namespace pamo::baselines {

struct JcabOptions {
  double w_accuracy = 1.0;
  double w_energy = 1.0;
  /// Lyapunov penalty weight V (higher = more aggressive on the objective,
  /// slower queue convergence).
  double lyapunov_v = 8.0;
  std::size_t max_rounds = 24;
  /// Termination threshold on the objective change (Fig. 10b knob).
  double delta = 0.02;
};

BaselineResult run_jcab(const eva::Workload& workload,
                        const JcabOptions& options);

}  // namespace pamo::baselines
