// FACT baseline (Liu et al., INFOCOM 2018 — reference [19]).
//
// FACT ("an edge network orchestrator for mobile augmented reality")
// minimizes the weighted sum of end-to-end latency and accuracy loss by
// block coordinate descent over (a) each stream's resolution and (b) the
// stream→server allocation. It does not adapt frame rate and ignores
// energy and bandwidth consumption — a single-objective method with a
// different blind spot than JCAB.
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"

namespace pamo::baselines {

struct FactOptions {
  double w_latency = 1.0;
  double w_accuracy = 1.0;
  /// Frame rate used for every stream (FACT does not adapt fps).
  std::uint32_t fixed_fps = 10;
  std::size_t max_rounds = 30;
  /// BCD termination threshold on the objective change (Fig. 10b knob).
  double delta = 0.02;
};

BaselineResult run_fact(const eva::Workload& workload,
                        const FactOptions& options);

}  // namespace pamo::baselines
