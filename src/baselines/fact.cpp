#include "baselines/fact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace pamo::baselines {

namespace {

struct StreamTables {
  // Indexed by resolution knob.
  std::vector<double> accuracy;   // at the fixed fps
  std::vector<double> proc_time;  // p(r)
  std::vector<double> bits;       // θ_bit(r)
  double acc_lo = 0, acc_hi = 0;
  double lat_lo = 0, lat_hi = 0;  // latency bounds for normalization
};

}  // namespace

BaselineResult run_fact(const eva::Workload& workload,
                        const FactOptions& options) {
  const auto& space = workload.space;
  const std::size_t num_streams = workload.num_streams();
  const std::size_t num_servers = workload.num_servers();
  const std::size_t num_res = space.resolutions().size();
  PAMO_CHECK(std::find(space.fps_knobs().begin(), space.fps_knobs().end(),
                       options.fixed_fps) != space.fps_knobs().end(),
             "fixed_fps must be one of the workload's fps knobs");

  const double b_min =
      *std::min_element(workload.uplink_mbps.begin(), workload.uplink_mbps.end());
  const double b_max =
      *std::max_element(workload.uplink_mbps.begin(), workload.uplink_mbps.end());

  std::vector<StreamTables> tables(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    const auto& clip = workload.clips[i];
    auto& t = tables[i];
    t.acc_lo = 1e300;
    t.acc_hi = -1e300;
    t.lat_lo = 1e300;
    t.lat_hi = -1e300;
    for (auto r : space.resolutions()) {
      const double acc = clip.accuracy(r, options.fixed_fps);
      const double p = clip.proc_time(r);
      const double bits = clip.bits_per_frame(r);
      t.accuracy.push_back(acc);
      t.proc_time.push_back(p);
      t.bits.push_back(bits);
      t.acc_lo = std::min(t.acc_lo, acc);
      t.acc_hi = std::max(t.acc_hi, acc);
      t.lat_lo = std::min(t.lat_lo, p + bits / (b_max * 1e6));
      t.lat_hi = std::max(t.lat_hi, p + bits / (b_min * 1e6));
    }
  }

  auto unit = [](double v, double lo, double hi) {
    return hi > lo ? std::clamp((v - lo) / (hi - lo), 0.0, 1.0) : 0.0;
  };

  // Per-stream objective term for resolution knob k on a server of uplink B.
  auto term = [&](std::size_t i, std::size_t k, double uplink) {
    const auto& t = tables[i];
    const double latency = t.proc_time[k] + t.bits[k] / (uplink * 1e6);
    return options.w_latency * unit(latency, t.lat_lo, t.lat_hi) +
           options.w_accuracy *
               (1.0 - unit(t.accuracy[k], t.acc_lo, t.acc_hi));
  };

  // State: resolution knob per stream and server per stream.
  std::vector<std::size_t> res_knob(num_streams, num_res / 2);
  std::vector<std::size_t> server_of(num_streams, 0);

  // Initial allocation: sort by bits descending, place on the server with
  // the lowest (load, then transfer) among feasible ones.
  const double fps = options.fixed_fps;
  auto reallocate = [&]() {
    std::vector<std::size_t> order(num_streams);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tables[a].bits[res_knob[a]] >
                              tables[b].bits[res_knob[b]];
                     });
    std::vector<double> load(num_servers, 0.0);
    for (std::size_t idx : order) {
      const double util = tables[idx].proc_time[res_knob[idx]] * fps;
      double best_cost = std::numeric_limits<double>::max();
      std::size_t best_server = 0;
      for (std::size_t server = 0; server < num_servers; ++server) {
        const bool fits = load[server] + util <= 1.0 + 1e-12;
        const double transfer = tables[idx].bits[res_knob[idx]] /
                                (workload.uplink_mbps[server] * 1e6);
        // Overloaded servers get a large penalty instead of a hard reject
        // so the method always returns *some* allocation.
        const double cost =
            transfer + load[server] * 0.01 + (fits ? 0.0 : 10.0 + load[server]);
        if (cost < best_cost) {
          best_cost = cost;
          best_server = server;
        }
      }
      server_of[idx] = best_server;
      load[best_server] += util;
    }
  };
  reallocate();

  auto total_objective = [&]() {
    double sum = 0.0;
    for (std::size_t i = 0; i < num_streams; ++i) {
      sum += term(i, res_knob[i], workload.uplink_mbps[server_of[i]]);
    }
    return sum;
  };

  BaselineResult result;
  double prev = std::numeric_limits<double>::max();
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.iterations;

    // Block 1: per-stream resolution given the allocation, respecting each
    // server's Const1 budget.
    std::vector<double> load(num_servers, 0.0);
    for (std::size_t i = 0; i < num_streams; ++i) {
      load[server_of[i]] += tables[i].proc_time[res_knob[i]] * fps;
    }
    for (std::size_t i = 0; i < num_streams; ++i) {
      const std::size_t server = server_of[i];
      const double budget =
          1.0 - (load[server] - tables[i].proc_time[res_knob[i]] * fps);
      double best_value = std::numeric_limits<double>::max();
      std::size_t best_k = res_knob[i];
      for (std::size_t k = 0; k < num_res; ++k) {
        if (tables[i].proc_time[k] * fps > budget + 1e-12) continue;
        const double value = term(i, k, workload.uplink_mbps[server]);
        if (value < best_value) {
          best_value = value;
          best_k = k;
        }
      }
      load[server] += (tables[i].proc_time[best_k] -
                       tables[i].proc_time[res_knob[i]]) * fps;
      res_knob[i] = best_k;
    }

    // Block 2: reallocation given the resolutions.
    reallocate();

    const double objective = total_objective();
    if (round > 0 &&
        std::fabs(prev - objective) <
            options.delta * static_cast<double>(num_streams)) {
      break;
    }
    prev = objective;
  }

  result.config.resize(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    result.config[i] = {space.resolutions()[res_knob[i]], options.fixed_fps};
  }
  result.schedule =
      sched::schedule_fixed_assignment(workload, result.config, server_of);
  result.feasible = true;
  return result;
}

}  // namespace pamo::baselines
