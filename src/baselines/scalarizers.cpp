#include "baselines/scalarizers.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "eva/outcomes.hpp"
#include "sched/scheduler.hpp"

namespace pamo::baselines {

const char* weight_scheme_name(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kEqual: return "Equal";
    case WeightScheme::kRoc: return "ROC";
    case WeightScheme::kRankSum: return "RankSum";
    case WeightScheme::kPseudo: return "Pseudo";
  }
  return "?";
}

std::array<double, eva::kNumObjectives> scheme_weights(
    WeightScheme scheme,
    const std::array<eva::Objective, eva::kNumObjectives>& ranking) {
  constexpr std::size_t k = eva::kNumObjectives;
  std::array<double, k> weights{};
  switch (scheme) {
    case WeightScheme::kEqual: {
      weights.fill(1.0 / static_cast<double>(k));
      break;
    }
    case WeightScheme::kRoc: {
      for (std::size_t rank = 0; rank < k; ++rank) {
        double sum = 0.0;
        for (std::size_t j = rank; j < k; ++j) {
          sum += 1.0 / static_cast<double>(j + 1);
        }
        weights[static_cast<std::size_t>(ranking[rank])] =
            sum / static_cast<double>(k);
      }
      break;
    }
    case WeightScheme::kRankSum: {
      for (std::size_t rank = 0; rank < k; ++rank) {
        weights[static_cast<std::size_t>(ranking[rank])] =
            2.0 * static_cast<double>(k - rank) /
            (static_cast<double>(k) * static_cast<double>(k + 1));
      }
      break;
    }
    case WeightScheme::kPseudo:
      throw Error("Pseudo-weights are sample-derived; use run_scalarizer");
  }
  return weights;
}

namespace {

/// Scalarized loss of a feasible solution: Σ w_i ŷ_i (lower is better).
double scalarized_loss(const std::array<double, eva::kNumObjectives>& weights,
                       const eva::OutcomeVector& normalized) {
  double loss = 0.0;
  for (std::size_t i = 0; i < eva::kNumObjectives; ++i) {
    loss += weights[i] * normalized[i];
  }
  return loss;
}

/// Evaluate a configuration: Algorithm 1 schedule + normalized outcomes.
std::optional<eva::OutcomeVector> evaluate(
    const eva::Workload& workload, const eva::OutcomeNormalizer& normalizer,
    const eva::JointConfig& config, sched::ScheduleResult* schedule_out) {
  sched::ScheduleResult schedule =
      sched::schedule_zero_jitter(workload, config);
  if (!schedule.feasible) return std::nullopt;
  const eva::OutcomeVector raw =
      eva::true_outcomes(workload, config, schedule.uplink_per_parent);
  if (schedule_out != nullptr) *schedule_out = std::move(schedule);
  return normalizer.normalize(raw);
}

std::array<double, eva::kNumObjectives> pseudo_weights_from_samples(
    const eva::Workload& workload, const eva::OutcomeNormalizer& normalizer,
    std::size_t num_samples, Rng& rng) {
  // Pseudo-weights: w_i ∝ (worst_i − observed best_i) over a sample of
  // feasible solutions — objectives with more headroom get more weight.
  std::array<double, eva::kNumObjectives> best{};
  best.fill(1.0);
  std::size_t found = 0;
  for (std::size_t trial = 0; trial < num_samples * 4 && found < num_samples;
       ++trial) {
    eva::JointConfig config;
    for (std::size_t i = 0; i < workload.num_streams(); ++i) {
      config.push_back(workload.space.sample(rng));
    }
    const auto normalized = evaluate(workload, normalizer, config, nullptr);
    if (!normalized) continue;
    ++found;
    for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
      best[k] = std::min(best[k], (*normalized)[k]);
    }
  }
  std::array<double, eva::kNumObjectives> weights{};
  double total = 0.0;
  for (std::size_t k = 0; k < eva::kNumObjectives; ++k) {
    weights[k] = 1.0 - best[k];  // headroom below the worst (=1)
    total += weights[k];
  }
  if (total <= 0) {
    weights.fill(1.0 / eva::kNumObjectives);
  } else {
    for (auto& w : weights) w /= total;
  }
  return weights;
}

}  // namespace

BaselineResult run_scalarizer(const eva::Workload& workload,
                              const ScalarizerOptions& options) {
  const eva::OutcomeNormalizer normalizer =
      eva::OutcomeNormalizer::for_workload(workload);
  Rng rng(options.seed);

  std::array<double, eva::kNumObjectives> weights{};
  if (options.explicit_weights.has_value()) {
    weights = *options.explicit_weights;
  } else if (options.scheme == WeightScheme::kPseudo) {
    weights = pseudo_weights_from_samples(workload, normalizer,
                                          options.pseudo_samples, rng);
  } else {
    weights = scheme_weights(options.scheme, options.ranking);
  }

  BaselineResult result;
  // Start from the most frugal configuration (always schedulable if
  // anything is) and coordinate-descend per stream.
  eva::JointConfig config(workload.num_streams(),
                          {workload.space.resolutions().front(),
                           workload.space.fps_knobs().front()});
  auto current = evaluate(workload, normalizer, config, &result.schedule);
  if (!current) return result;  // even the minimum is unschedulable
  double current_loss = scalarized_loss(weights, *current);
  result.config = config;
  result.feasible = true;

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    ++result.iterations;
    bool improved = false;
    for (std::size_t i = 0; i < workload.num_streams(); ++i) {
      const eva::StreamConfig original = config[i];
      eva::StreamConfig best_knob = original;
      for (auto r : workload.space.resolutions()) {
        for (auto s : workload.space.fps_knobs()) {
          if (eva::StreamConfig{r, s} == original) continue;
          config[i] = {r, s};
          sched::ScheduleResult schedule;
          const auto normalized =
              evaluate(workload, normalizer, config, &schedule);
          if (!normalized) continue;
          const double loss = scalarized_loss(weights, *normalized);
          if (loss < current_loss - 1e-12) {
            current_loss = loss;
            best_knob = {r, s};
            result.schedule = std::move(schedule);
            improved = true;
          }
        }
      }
      config[i] = best_knob;
    }
    result.config = config;
    if (!improved) break;
  }
  return result;
}

}  // namespace pamo::baselines
