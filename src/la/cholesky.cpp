#include "la/cholesky.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace pamo::la {

bool Cholesky::try_factor(const Matrix& a, double jitter, Matrix& out) {
  const std::size_t n = a.rows();
  out = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= out(j, k) * out(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    out(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= out(i, k) * out(j, k);
      out(i, j) = sum / ljj;
    }
  }
  return true;
}

Cholesky::Cholesky(const Matrix& a, double max_jitter) {
  PAMO_CHECK(a.rows() == a.cols(), "Cholesky requires a square matrix");
  PAMO_CHECK(a.rows() > 0, "Cholesky of an empty matrix");
  PAMO_EXPECTS(max_jitter >= 0.0, "negative jitter cap");
  double jitter = 0.0;
  if (try_factor(a, jitter, lower_)) {
    jitter_ = jitter;
    PAMO_ENSURES(lower_.rows() == a.rows(), "factor keeps the input dimension");
    return;
  }
  // Scale the starting jitter with the matrix magnitude.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    scale = std::max(scale, std::fabs(a(i, i)));
  }
  // An all-zero diagonal gives no magnitude to scale by; fall back to 1.
  if (scale == 0.0) scale = 1.0;  // pamo-lint: allow(float-eq)
  jitter = scale * 1e-10;
  while (jitter <= max_jitter * scale) {
    if (try_factor(a, jitter, lower_)) {
      jitter_ = jitter;
      PAMO_ENSURES(lower_.rows() == a.rows(), "factor keeps the input dimension");
      return;
    }
    jitter *= 10.0;
  }
  throw Error("Cholesky: matrix is not positive definite even with jitter");
}

Cholesky Cholesky::from_parts(Matrix lower, double jitter) {
  PAMO_CHECK(lower.rows() == lower.cols(),
             "Cholesky factor must be square");
  PAMO_CHECK(lower.rows() > 0, "Cholesky factor must be non-empty");
  PAMO_CHECK(jitter >= 0.0, "Cholesky jitter must be non-negative");
  Cholesky out;
  out.lower_ = std::move(lower);
  out.jitter_ = jitter;
  return out;
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = lower_.rows();
  PAMO_CHECK(b.size() == n, "solve_lower dimension mismatch");
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower_(i, k) * y[k];
    y[i] = sum / lower_(i, i);
  }
  return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
  const std::size_t n = lower_.rows();
  PAMO_CHECK(y.size() == n, "solve_upper dimension mismatch");
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower_(k, i) * x[k];
    x[i] = sum / lower_(i, i);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

Matrix Cholesky::solve_lower(const Matrix& b) const {
  const std::size_t n = lower_.rows();
  PAMO_CHECK(b.rows() == n, "solve_lower dimension mismatch");
  const std::size_t m = b.cols();
  Matrix y = b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = lower_(i, k);
      for (std::size_t c = 0; c < m; ++c) y(i, c) -= lik * y(k, c);
    }
    const double lii = lower_(i, i);
    for (std::size_t c = 0; c < m; ++c) y(i, c) /= lii;
  }
  return y;
}

Matrix Cholesky::solve_upper(const Matrix& y) const {
  const std::size_t n = lower_.rows();
  PAMO_CHECK(y.rows() == n, "solve_upper dimension mismatch");
  const std::size_t m = y.cols();
  Matrix x = y;
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t k = i + 1; k < n; ++k) {
      const double lki = lower_(k, i);
      for (std::size_t c = 0; c < m; ++c) x(i, c) -= lki * x(k, c);
    }
    const double lii = lower_(i, i);
    for (std::size_t c = 0; c < m; ++c) x(i, c) /= lii;
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  PAMO_CHECK(b.rows() == lower_.rows(), "solve dimension mismatch");
  return solve_upper(solve_lower(b));
}

bool Cholesky::extend(const Matrix& cross, const Matrix& corner) {
  const std::size_t n = lower_.rows();
  const std::size_t m = cross.rows();
  PAMO_CHECK(cross.cols() == n, "extend: cross block must be m x n");
  PAMO_CHECK(corner.rows() == m && corner.cols() == m,
             "extend: corner block must be m x m");
  PAMO_CHECK(m > 0, "extend with no new rows");
  // A jittered factor is L(A + jI); the full refactorization would rerun
  // the ladder on the grown matrix from jitter 0, which no extension of
  // this factor can reproduce exactly.
  if (jitter_ != 0.0) return false;  // pamo-lint: allow(float-eq)

  // New rows of the factor: row r of L21 solves L11 y = cross(r, ·)ᵀ. The
  // accumulation (k ascending) and the divide match try_factor's column
  // sweep for these entries exactly.
  Matrix l21(m, n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = cross(r, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l21(r, k) * lower_(j, k);
      l21(r, j) = sum / lower_(j, j);
    }
  }

  // Trailing m x m factor of the Schur complement, again with
  // try_factor's exact accumulation order: the k sum over the old columns
  // (L21 entries) comes before the k sum over the new ones (L22 entries),
  // just as the full factorization walks k = 0..j-1 across both ranges.
  Matrix l22(m, m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double diag = corner(j, j);
    for (std::size_t k = 0; k < n; ++k) diag -= l21(j, k) * l21(j, k);
    for (std::size_t k = 0; k < j; ++k) diag -= l22(j, k) * l22(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l22(j, j) = ljj;
    for (std::size_t i = j + 1; i < m; ++i) {
      double sum = corner(i, j);
      for (std::size_t k = 0; k < n; ++k) sum -= l21(i, k) * l21(j, k);
      for (std::size_t k = 0; k < j; ++k) sum -= l22(i, k) * l22(j, k);
      l22(i, j) = sum / ljj;
    }
  }

  // Commit only after the whole extension is known to succeed, so a failed
  // extend leaves the factor usable for the caller's full-refit fallback.
  Matrix grown(n + m, n + m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = lower_(i, j);
  }
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) grown(n + r, j) = l21(r, j);
    for (std::size_t j = 0; j <= r; ++j) grown(n + r, n + j) = l22(r, j);
  }
  lower_ = std::move(grown);
  PAMO_ENSURES(lower_.rows() == n + m, "extend grows the factor by m rows");
  return true;
}

bool Cholesky::rank_one_update(const Vector& v) {
  const std::size_t n = lower_.rows();
  PAMO_CHECK(v.size() == n, "rank_one_update dimension mismatch");
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  // The sweep mutates a working copy of v; commit to lower_ in place only
  // because every intermediate stays finite when the inputs are (the
  // hypotenuse grows the diagonal, never shrinks it).
  Vector w = v;
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = lower_(k, k);
    const double r = std::hypot(lkk, w[k]);
    const double c = r / lkk;
    const double s = w[k] / lkk;
    lower_(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      lower_(i, k) = (lower_(i, k) + s * w[i]) / c;
      w[i] = c * w[i] - s * lower_(i, k);
    }
  }
  PAMO_ENSURES(lower_.rows() == n, "rank_one_update keeps the dimension");
  return true;
}

double Cholesky::log_det() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < lower_.rows(); ++i) sum += std::log(lower_(i, i));
  return 2.0 * sum;
}

}  // namespace pamo::la
