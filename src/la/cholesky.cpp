#include "la/cholesky.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace pamo::la {

bool Cholesky::try_factor(const Matrix& a, double jitter, Matrix& out) {
  const std::size_t n = a.rows();
  out = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= out(j, k) * out(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    out(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= out(i, k) * out(j, k);
      out(i, j) = sum / ljj;
    }
  }
  return true;
}

Cholesky::Cholesky(const Matrix& a, double max_jitter) {
  PAMO_CHECK(a.rows() == a.cols(), "Cholesky requires a square matrix");
  PAMO_CHECK(a.rows() > 0, "Cholesky of an empty matrix");
  PAMO_EXPECTS(max_jitter >= 0.0, "negative jitter cap");
  double jitter = 0.0;
  if (try_factor(a, jitter, l_)) {
    jitter_ = jitter;
    PAMO_ENSURES(l_.rows() == a.rows(), "factor keeps the input dimension");
    return;
  }
  // Scale the starting jitter with the matrix magnitude.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    scale = std::max(scale, std::fabs(a(i, i)));
  }
  // An all-zero diagonal gives no magnitude to scale by; fall back to 1.
  if (scale == 0.0) scale = 1.0;  // pamo-lint: allow(float-eq)
  jitter = scale * 1e-10;
  while (jitter <= max_jitter * scale) {
    if (try_factor(a, jitter, l_)) {
      jitter_ = jitter;
      PAMO_ENSURES(l_.rows() == a.rows(), "factor keeps the input dimension");
      return;
    }
    jitter *= 10.0;
  }
  throw Error("Cholesky: matrix is not positive definite even with jitter");
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  PAMO_CHECK(b.size() == n, "solve_lower dimension mismatch");
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
  const std::size_t n = l_.rows();
  PAMO_CHECK(y.size() == n, "solve_upper dimension mismatch");
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  PAMO_CHECK(b.rows() == l_.rows(), "solve dimension mismatch");
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Cholesky::log_det() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

}  // namespace pamo::la
