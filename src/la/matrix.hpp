// Dense row-major matrix and vector operations sized for exact GP
// inference (hundreds to low thousands of rows). No BLAS dependency; the
// kernels are cache-friendly triple loops, adequate at this scale.
#pragma once

#include <cstddef>
#include <vector>

namespace pamo::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  static Matrix identity(std::size_t n);

  /// In-place: this += s * I (requires square).
  void add_diagonal(double s);

  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// c = a * b.
Matrix matmul(const Matrix& a, const Matrix& b);

/// c = a * b with i/j panel tiling so a block² panel of c stays hot while
/// a stripe of b streams through. The k loop stays ascending and untiled,
/// so every output element accumulates in exactly the same order as
/// matmul() — the two are bit-for-bit interchangeable.
Matrix matmul_blocked(const Matrix& a, const Matrix& b,
                      std::size_t block = 64);

/// y = a * x.
Vector matvec(const Matrix& a, const Vector& x);

/// y = aᵀ * x.
Vector matvec_transposed(const Matrix& a, const Vector& x);

/// Dot product.
double dot(const Vector& a, const Vector& b);

/// y += s * x.
void axpy(double s, const Vector& x, Vector& y);

/// Euclidean norm.
double norm2(const Vector& v);

}  // namespace pamo::la
