// Cholesky factorization and solves for symmetric positive-definite
// systems — the core primitive of exact GP inference.
#pragma once

#include "la/matrix.hpp"

namespace pamo::la {

/// Lower-triangular Cholesky factor L with A = L Lᵀ.
///
/// If A is only positive *semi*-definite numerically, the factorization
/// retries with geometrically increasing diagonal jitter (up to
/// `max_jitter`), the standard GP-library repair. Throws pamo::Error if the
/// matrix cannot be repaired.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a, double max_jitter = 1e-4);

  /// Rebuild a factorization from a previously computed lower factor and
  /// its jitter (checkpoint/restore support). No numerical work happens:
  /// the result is the exact object that produced `lower`, so solves and
  /// extend() behave bit-for-bit as before the round-trip. `lower` must be
  /// square; its strict upper triangle is ignored by every operation.
  static Cholesky from_parts(Matrix lower, double jitter);

  [[nodiscard]] const Matrix& lower() const { return lower_; }
  /// The jitter that was finally added to the diagonal (0 if none).
  [[nodiscard]] double jitter() const { return jitter_; }

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B for all columns at once (batched substitution).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solve L y = b (forward substitution).
  [[nodiscard]] Vector solve_lower(const Vector& b) const;

  /// Solve Lᵀ x = y (backward substitution).
  [[nodiscard]] Vector solve_upper(const Vector& y) const;

  /// Solve L Y = B for a full right-hand-side matrix. One row sweep
  /// streams L once for every column, with per-column arithmetic identical
  /// to the vector solve_lower (bit-for-bit).
  [[nodiscard]] Matrix solve_lower(const Matrix& b) const;

  /// Solve Lᵀ X = Y, batched like solve_lower(Matrix).
  [[nodiscard]] Matrix solve_upper(const Matrix& y) const;

  /// Grow the factor of A (n×n) into the factor of [[A, crossᵀ],[cross,
  /// corner]] in O(n²m) instead of the O((n+m)³) refactorization, where
  /// `cross` is m×n and `corner` is m×m (diagonal noise already added).
  /// The arithmetic matches the trailing columns of a from-scratch
  /// factorization operation-for-operation, so the extended factor is
  /// bit-for-bit identical to refactorizing the full matrix.
  ///
  /// Returns false — leaving this factor untouched — when the extension is
  /// not exactly reproducible: the extended matrix is not positive
  /// definite without jitter, or this factor itself carries jitter (the
  /// ladder re-runs from scratch on the full matrix, which an extension
  /// cannot imitate). Callers fall back to a full refactorization.
  [[nodiscard]] bool extend(const Matrix& cross, const Matrix& corner);

  /// Rank-one update: replace this factor of A with the factor of
  /// A + v vᵀ in O(n²) (the classical cholupdate Givens sweep), without
  /// touching A itself. The dimension is unchanged — this is the
  /// complement of extend(), which grows the factor. Unlike extend() the
  /// arithmetic does *not* match a from-scratch factorization bit-for-bit
  /// (the sweep is a different operation order); callers that need exact
  /// interchangeability refactorize instead. Because v vᵀ is PSD the
  /// update cannot destroy positive definiteness; a non-finite input
  /// leaves the factor untouched and returns false.
  [[nodiscard]] bool rank_one_update(const Vector& v);

  /// log |A| = 2 Σ log L_ii.
  [[nodiscard]] double log_det() const;

 private:
  Cholesky() = default;  // for from_parts
  static bool try_factor(const Matrix& a, double jitter, Matrix& out);

  Matrix lower_;
  double jitter_ = 0.0;
};

}  // namespace pamo::la
