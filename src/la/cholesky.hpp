// Cholesky factorization and solves for symmetric positive-definite
// systems — the core primitive of exact GP inference.
#pragma once

#include "la/matrix.hpp"

namespace pamo::la {

/// Lower-triangular Cholesky factor L with A = L Lᵀ.
///
/// If A is only positive *semi*-definite numerically, the factorization
/// retries with geometrically increasing diagonal jitter (up to
/// `max_jitter`), the standard GP-library repair. Throws pamo::Error if the
/// matrix cannot be repaired.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a, double max_jitter = 1e-4);

  [[nodiscard]] const Matrix& lower() const { return l_; }
  /// The jitter that was finally added to the diagonal (0 if none).
  [[nodiscard]] double jitter() const { return jitter_; }

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solve L y = b (forward substitution).
  [[nodiscard]] Vector solve_lower(const Vector& b) const;

  /// Solve Lᵀ x = y (backward substitution).
  [[nodiscard]] Vector solve_upper(const Vector& y) const;

  /// log |A| = 2 Σ log L_ii.
  [[nodiscard]] double log_det() const;

 private:
  static bool try_factor(const Matrix& a, double jitter, Matrix& out);

  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace pamo::la
