#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace pamo::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::add_diagonal(double s) {
  PAMO_CHECK(rows_ == cols_, "add_diagonal requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + i] += s;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  PAMO_ENSURES(t.rows() == cols_ && t.cols() == rows_,
               "transpose swaps dimensions");
  return t;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  PAMO_CHECK(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order: streams through b and c rows contiguously.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      // Exact-zero skip: sparsity shortcut, any nonzero must multiply.
      if (aik == 0.0) continue;  // pamo-lint: allow(float-eq)
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_blocked(const Matrix& a, const Matrix& b, std::size_t block) {
  PAMO_CHECK(a.cols() == b.rows(), "matmul dimension mismatch");
  PAMO_EXPECTS(block > 0, "matmul_blocked requires a positive block size");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += block) {
    const std::size_t i1 = std::min(a.rows(), i0 + block);
    for (std::size_t j0 = 0; j0 < b.cols(); j0 += block) {
      const std::size_t j1 = std::min(b.cols(), j0 + block);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
          const double aik = a(i, k);
          // Exact-zero skip: sparsity shortcut, any nonzero must multiply.
          if (aik == 0.0) continue;  // pamo-lint: allow(float-eq)
          for (std::size_t j = j0; j < j1; ++j) {
            c(i, j) += aik * b(k, j);
          }
        }
      }
    }
  }
  return c;
}

Vector matvec(const Matrix& a, const Vector& x) {
  PAMO_CHECK(a.cols() == x.size(), "matvec dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  PAMO_CHECK(a.rows() == x.size(), "matvec_transposed dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    // Exact-zero skip: sparsity shortcut, any nonzero must multiply.
    if (xi == 0.0) continue;  // pamo-lint: allow(float-eq)
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  PAMO_CHECK(a.size() == b.size(), "dot dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void axpy(double s, const Vector& x, Vector& y) {
  PAMO_CHECK(x.size() == y.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += s * x[i];
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

}  // namespace pamo::la
