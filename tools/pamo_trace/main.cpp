// pamo_trace — render or validate an exported obs::EpochRecord.
//
//   pamo_trace RECORD.json           human-readable report to stdout
//   pamo_trace --check RECORD.json   structural validation; exit 1 on
//                                    any inconsistency (CI gate)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/epoch_record.hpp"
#include "pamo_trace/trace.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw pamo::Error("pamo_trace: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr, "usage: pamo_trace [--check] RECORD.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_mode = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_mode = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const pamo::obs::EpochRecord record =
        pamo::obs::record_from_json(read_file(path));
    if (check_mode) {
      const pamo::tools::TraceCheck check = pamo::tools::check_record(record);
      if (!check.ok) {
        for (const auto& problem : check.problems) {
          std::cerr << "pamo_trace: " << problem << "\n";
        }
        std::cerr << "pamo_trace: " << check.problems.size()
                  << " problem(s) in " << path << "\n";
        return 1;
      }
      std::cout << "pamo_trace: " << path << " OK ("
                << record.spans.stats.size() << " span paths, "
                << record.metrics.counters.size() << " counters)\n";
      return 0;
    }
    std::cout << pamo::tools::render_record(record);
    return 0;
  } catch (const pamo::Error& e) {
    std::cerr << "pamo_trace: " << e.what() << "\n";
    return 1;
  }
}
