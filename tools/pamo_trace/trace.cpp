#include "pamo_trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace pamo::tools {

namespace {

std::string format_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3fs",
                  static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.3fus",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void check_sim(TraceCheck& check, const obs::EpochRecord::SimSummary& sim,
               const std::string& label) {
  if (sim.total_emitted != sim.total_frames + sim.total_dropped) {
    check.fail(label + ": frame conservation violated (emitted " +
               std::to_string(sim.total_emitted) + " != served " +
               std::to_string(sim.total_frames) + " + dropped " +
               std::to_string(sim.total_dropped) + ")");
  }
  if (sim.dropped_by_loss > sim.total_dropped) {
    check.fail(label + ": dropped_by_loss exceeds total_dropped");
  }
  if (sim.slo_violations > sim.total_frames) {
    check.fail(label + ": more SLO violations than served frames");
  }
  if (!std::isfinite(sim.mean_latency) || sim.mean_latency < 0.0 ||
      !std::isfinite(sim.max_jitter) || sim.max_jitter < 0.0 ||
      !std::isfinite(sim.total_queue_delay) || sim.total_queue_delay < 0.0) {
    check.fail(label + ": negative or non-finite latency statistics");
  }
}

}  // namespace

TraceCheck check_record(const obs::EpochRecord& record) {
  TraceCheck check;

  // ---- Span aggregate algebra. ----
  for (const auto& stat : record.spans.stats) {
    if (stat.path.empty()) check.fail("span stat with an empty path");
    if (stat.count == 0) {
      check.fail("span '" + stat.path + "' aggregated zero occurrences");
      continue;
    }
    if (stat.min_ns > stat.max_ns) {
      check.fail("span '" + stat.path + "': min_ns > max_ns");
    }
    // total is a sum of `count` durations each within [min, max].
    if (stat.total_ns < stat.min_ns * stat.count ||
        stat.total_ns > stat.max_ns * stat.count) {
      check.fail("span '" + stat.path +
                 "': total_ns outside [count*min, count*max]");
    }
  }
  // Stats are exported sorted by path, uniquely.
  for (std::size_t i = 1; i < record.spans.stats.size(); ++i) {
    if (record.spans.stats[i - 1].path >= record.spans.stats[i].path) {
      check.fail("span stats not sorted/unique at '" +
                 record.spans.stats[i].path + "'");
    }
  }

  // ---- Event log: ordering, and coverage against the aggregates. ----
  std::map<std::string, std::uint64_t> event_counts;
  for (std::size_t i = 0; i < record.spans.events.size(); ++i) {
    const auto& event = record.spans.events[i];
    if (event.path.empty()) check.fail("span event with an empty path");
    ++event_counts[event.path];
    if (i > 0 &&
        event.start_ns < record.spans.events[i - 1].start_ns) {
      check.fail("span events not sorted by start_ns at index " +
                 std::to_string(i));
    }
    // Depth is derivable from the path: depth == number of '/'.
    const auto slashes = static_cast<std::uint32_t>(
        std::count(event.path.begin(), event.path.end(), '/'));
    if (event.depth != slashes) {
      check.fail("span event '" + event.path +
                 "': depth does not match path nesting");
    }
  }
  for (const auto& [path, n] : event_counts) {
    const auto it = std::find_if(
        record.spans.stats.begin(), record.spans.stats.end(),
        [&](const obs::SpanStat& s) { return s.path == path; });
    if (it == record.spans.stats.end()) {
      check.fail("event path '" + path + "' missing from span stats");
    } else if (n > it->count) {
      check.fail("event path '" + path +
                 "': more logged events than aggregated occurrences");
    }
  }
  if (record.spans.events_dropped == 0) {
    // Without retention pressure the log is complete: totals must agree.
    std::uint64_t aggregated = 0;
    for (const auto& stat : record.spans.stats) aggregated += stat.count;
    if (aggregated != record.spans.events.size()) {
      check.fail("no events dropped, yet aggregate count " +
                 std::to_string(aggregated) + " != event log size " +
                 std::to_string(record.spans.events.size()));
    }
  }

  // ---- Metrics. ----
  for (std::size_t i = 1; i < record.metrics.counters.size(); ++i) {
    if (record.metrics.counters[i - 1].first >=
        record.metrics.counters[i].first) {
      check.fail("counters not sorted/unique at '" +
                 record.metrics.counters[i].first + "'");
    }
  }
  for (const auto& h : record.metrics.histograms) {
    std::uint64_t bucket_sum = 0;
    for (const auto& [index, count] : h.buckets) {
      if (index >= obs::Histogram::kBuckets) {
        check.fail("histogram '" + h.name + "': bucket index out of range");
      }
      if (count == 0) {
        check.fail("histogram '" + h.name + "': empty bucket exported");
      }
      bucket_sum += count;
    }
    if (bucket_sum != h.count) {
      check.fail("histogram '" + h.name + "': bucket sum " +
                 std::to_string(bucket_sum) + " != count " +
                 std::to_string(h.count));
    }
    if (h.count > 0 && h.min > h.max) {
      check.fail("histogram '" + h.name + "': min > max");
    }
  }

  // ---- Churn & admission accounting. ----
  // Every offered stream must land in exactly one bucket per epoch; a
  // governor that loses (or double-counts) a stream is a real bug, not a
  // rendering nit.
  const auto& churn = record.churn;
  if (churn.admitted + churn.deferred + churn.shed != churn.offered) {
    check.fail("churn: admitted " + std::to_string(churn.admitted) +
               " + deferred " + std::to_string(churn.deferred) + " + shed " +
               std::to_string(churn.shed) + " != offered " +
               std::to_string(churn.offered));
  }
  if (churn.arrived > churn.offered) {
    check.fail("churn: more arrivals than offered streams");
  }
  if (!std::isfinite(churn.load_factor) || churn.load_factor <= 0.0 ||
      !std::isfinite(churn.offered_load) || churn.offered_load < 0.0 ||
      !std::isfinite(churn.admitted_load) || churn.admitted_load < 0.0) {
    check.fail("churn: non-finite or non-positive load statistics");
  }
  if (churn.admitted_load > churn.offered_load * (1.0 + 1e-9)) {
    check.fail("churn: admitted_load exceeds offered_load");
  }
  for (const auto& action : record.governor_actions) {
    if (action.decision != "admit" && action.decision != "defer" &&
        action.decision != "shed" && action.decision != "release") {
      check.fail("governor action with unknown decision '" +
                 action.decision + "'");
    }
    if (action.epoch != record.epoch) {
      check.fail("governor action for stream " +
                 std::to_string(action.stream) +
                 " logged against a different epoch");
    }
  }

  // ---- Epoch payload. ----
  check_sim(check, record.sim, "sim");
  if (record.repaired) check_sim(check, record.post_repair_sim, "post_repair_sim");
  for (const double z : record.benefit_trace) {
    if (!std::isfinite(z)) {
      check.fail("non-finite entry in benefit_trace");
      break;
    }
  }
  return check;
}

std::string render_span_stats(const obs::SpanSnapshot& spans) {
  std::vector<const obs::SpanStat*> order;
  order.reserve(spans.stats.size());
  for (const auto& stat : spans.stats) order.push_back(&stat);
  std::stable_sort(order.begin(), order.end(),
                   [](const obs::SpanStat* a, const obs::SpanStat* b) {
                     return a->total_ns > b->total_ns;
                   });
  std::ostringstream out;
  out << "span stats (by total time):\n";
  for (const auto* stat : order) {
    out << "  " << format_ns(stat->total_ns) << "  x" << stat->count
        << "  [" << format_ns(stat->min_ns) << " .. "
        << format_ns(stat->max_ns) << "]  " << stat->path << "\n";
  }
  return out.str();
}

std::string render_timeline(const obs::SpanSnapshot& spans,
                            std::size_t max_rows) {
  std::ostringstream out;
  out << "timeline:\n";
  const std::uint64_t t0 =
      spans.events.empty() ? 0 : spans.events.front().start_ns;
  std::size_t rows = 0;
  for (const auto& event : spans.events) {
    if (rows++ == max_rows) {
      out << "  ... (" << spans.events.size() - max_rows
          << " more events)\n";
      break;
    }
    out << "  +" << format_ns(event.start_ns - t0) << "  ";
    for (std::uint32_t d = 0; d < event.depth; ++d) out << "  ";
    // Leaf name only: nesting is already shown by the indentation.
    const auto slash = event.path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? event.path : event.path.substr(slash + 1);
    out << leaf << " (" << format_ns(event.duration_ns) << ")\n";
  }
  if (spans.events_dropped > 0) {
    out << "  (" << spans.events_dropped
        << " events dropped past the retention cap)\n";
  }
  return out.str();
}

std::string render_metrics(const obs::MetricsSnapshot& metrics) {
  std::ostringstream out;
  out << "counters:\n";
  for (const auto& [name, value] : metrics.counters) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "gauges:\n";
  for (const auto& [name, value] : metrics.gauges) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "histograms:\n";
  for (const auto& h : metrics.histograms) {
    out << "  " << h.name << "  n=" << h.count;
    if (h.count > 0) out << "  min=" << h.min << "  max=" << h.max;
    out << "\n";
  }
  return out.str();
}

std::string render_record(const obs::EpochRecord& record) {
  std::ostringstream out;
  out << "epoch " << record.epoch << "  feasible=" << record.feasible
      << "  fallback=" << record.fallback << "  repaired=" << record.repaired
      << "\n";
  const auto& h = record.health;
  out << "health: rejected=" << h.samples_rejected
      << " repaired=" << h.samples_repaired
      << " outliers=" << h.outliers_downweighted
      << " chol_recoveries=" << h.cholesky_recoveries
      << " iter_failures=" << h.iteration_failures
      << " watchdog=" << h.watchdog_fires
      << " inconsistent_pairs=" << h.inconsistent_pairs << "\n";
  if (!h.error_message.empty()) {
    out << "health: last absorbed error: " << h.error_message << "\n";
  }
  if (h.warm_started || h.drift_fires > 0 || h.drift_downweighted > 0) {
    out << "continual: warm_started=" << h.warm_started
        << " drift_fires=" << h.drift_fires
        << " drift_downweighted=" << h.drift_downweighted << "\n";
  }
  const auto& churn = record.churn;
  const bool churn_active = churn.arrived > 0 || churn.departed > 0 ||
                            churn.deferred > 0 || churn.shed > 0 ||
                            churn.offered != churn.admitted ||
                            !record.governor_actions.empty();
  if (churn_active) {
    out << "churn: offered=" << churn.offered << " (+" << churn.arrived
        << "/-" << churn.departed << ")  admitted=" << churn.admitted
        << " deferred=" << churn.deferred << " shed=" << churn.shed
        << "  load=" << churn.admitted_load << "/" << churn.offered_load
        << " (x" << churn.load_factor << ")\n";
  }
  if (!record.governor_actions.empty()) {
    out << "governor:\n";
    for (const auto& action : record.governor_actions) {
      out << "  [" << action.decision << "] stream " << action.stream << ": "
          << action.detail << "\n";
    }
  }
  out << "sim: frames=" << record.sim.total_frames
      << " emitted=" << record.sim.total_emitted
      << " dropped=" << record.sim.total_dropped
      << " slo_violations=" << record.sim.slo_violations
      << " mean_latency=" << record.sim.mean_latency
      << " max_jitter=" << record.sim.max_jitter
      << " queue_delay=" << record.sim.total_queue_delay << "\n";
  if (!record.repairs.empty()) {
    out << "repairs:\n";
    for (const auto& repair : record.repairs) {
      out << "  [" << repair.kind << "] " << repair.detail << "\n";
    }
  }
  if (!record.benefit_trace.empty()) {
    out << "benefit trace:";
    for (const double z : record.benefit_trace) out << " " << z;
    out << "\n";
  }
  out << render_metrics(record.metrics);
  out << render_span_stats(record.spans);
  out << render_timeline(record.spans);
  return out.str();
}

}  // namespace pamo::tools
