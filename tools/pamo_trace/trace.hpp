// pamo_trace — rendering and validation of obs::EpochRecord exports.
//
// Split from main.cpp so the rendering/validation logic is unit-testable
// (tests/tools/test_pamo_trace.cpp); the CLI is a thin file-read on top.
#pragma once

#include <string>
#include <vector>

#include "obs/epoch_record.hpp"

namespace pamo::tools {

/// Structural validation verdict on an exported record.
struct TraceCheck {
  bool ok = true;
  std::vector<std::string> problems;  // human-readable, one per violation

  void fail(std::string what) {
    ok = false;
    problems.push_back(std::move(what));
  }
};

/// Validate the internal consistency of a record: span aggregate algebra
/// (count/min/max/total), event ordering and path coverage, histogram
/// bucket sums, and frame-conservation of the sim summaries. This is what
/// `pamo_trace --check` runs in CI against a smoke-epoch export.
[[nodiscard]] TraceCheck check_record(const obs::EpochRecord& record);

/// Per-path aggregate table, worst total time first.
[[nodiscard]] std::string render_span_stats(const obs::SpanSnapshot& spans);

/// Event timeline: one row per completed span, indented by nesting depth,
/// with start offsets relative to the first event. `max_rows` caps output
/// for huge logs (a trailing line reports the elision).
[[nodiscard]] std::string render_timeline(const obs::SpanSnapshot& spans,
                                          std::size_t max_rows = 64);

/// Counters, gauges and histogram summaries in export (sorted) order.
[[nodiscard]] std::string render_metrics(const obs::MetricsSnapshot& metrics);

/// Full human-readable report: epoch header, health, sim summary, repair
/// log, metrics, span stats and timeline.
[[nodiscard]] std::string render_record(const obs::EpochRecord& record);

}  // namespace pamo::tools
