// pamo-lint — repo-native static analysis for PaMO's determinism and
// error-discipline invariants.
//
// The headline guarantees of this codebase (zero-jitter schedules, seeded
// bit-for-bit reproducibility, "empty FaultPlan / dormant corruption model
// is a no-op") are invariants that one unseeded RNG or one iteration over
// an unordered container silently breaks. pamo_lint makes them enforced
// properties of the build: a token/regex + light-parsing pass over the
// tree that knows which directories are scheduling/simulation paths and
// which idioms are banned there.
//
// Rules (ids are what suppression comments name):
//   determinism-rng        std::rand/srand/std::random_device/std engines —
//                          all randomness must flow through pamo::Rng.
//   time-seeded-rng        RNG seeded from a clock (now()/time()/clock()).
//   unordered-iter         range-iteration over an unordered_{map,set} in a
//                          scheduling path (src/{sim,sched,bo,core}) —
//                          iteration order feeds decisions nondeterministically.
//   throw-discipline       `throw` of any type other than pamo::Error in
//                          src/ (bare rethrow `throw;` is allowed) — module
//                          API boundaries expose exactly one exception type.
//   catch-all-swallow      `catch (...)` whose handler neither rethrows nor
//                          captures std::current_exception.
//   float-eq               `==`/`!=` against a floating-point literal in
//                          src/ — exact float compares are allowlisted per
//                          line, never implicit.
//   unchecked-front-back   .front()/.back() in a scheduling path with no
//                          nearby emptiness evidence (.empty/.size/push_back
//                          on the same object within the preceding lines).
//   pragma-once            header without #pragma once.
//   using-namespace-header using namespace at header scope.
//   raw-thread             std::thread / std::jthread in src/ outside
//                          common/thread_pool.* — work must go through
//                          pamo::ThreadPool so worker count, shutdown and
//                          determinism stay centrally controlled (static
//                          queries like hardware_concurrency are fine).
//   wall-clock             wall-clock reads (std::chrono::system_clock,
//                          gettimeofday, time(nullptr), CLOCK_REALTIME,
//                          localtime/gmtime) in src/ outside src/obs/ and
//                          common/ticks — library results must not depend
//                          on the date; monotonic clocks are fine.
//   unchecked-file-write   std::(o)fstream / fopen in src/ outside
//                          ckpt/atomic_io — unchecked stream state and torn
//                          files on crash; durable writes must go through
//                          ckpt::write_file_atomic (temp + fsync + rename).
//   governor-action        mutation of the admission governor's remembered
//                          admitted set (`admitted_`) in src/core with no
//                          record_action call in the preceding lines —
//                          every admit/defer/shed/release decision must be
//                          logged as a structured GovernorAction before it
//                          changes who is admitted (state-rebuild paths
//                          like snapshot restore are allowlisted per line).
//
// Suppression: `// pamo-lint: allow(rule-a, rule-b)` on the offending line
// or the line directly above it. Suppressed findings are dropped unless
// Options.include_suppressed asks for them (they are then marked).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pamo::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
};

struct Options {
  /// Keep findings silenced by allow() comments, marked suppressed=true.
  bool include_suppressed = false;
};

/// All rule ids, in report order (stable; used by --list-rules and tests).
const std::vector<std::string>& rule_ids();

/// Lint one translation unit. `path` decides which rules apply (header
/// rules, src/-only rules, scheduling-path rules); `content` is the raw
/// source text. Findings come back sorted by line.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& options = {});

/// Comment/string-literal stripping used by the rule pass (exposed for
/// tests): comments and literal bodies are blanked to spaces, newlines and
/// everything else kept, so line/column geometry survives. Thin wrapper over
/// the shared pamo::analyze::strip_source code channel — there is exactly one
/// stripper implementation in the repo.
std::string strip_comments_and_strings(const std::string& content);

/// True when `path` is a scheduling/simulation path where the determinism
/// and hot-path rules apply (src/{sim,sched,bo,core}).
bool is_scheduling_path(const std::string& path);

/// `file:line: [rule] message` lines, one per finding.
std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable report: {"findings":[...],"count":N}.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace pamo::lint
