#include "pamo_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

#include "pamo_analyze/tokenizer.hpp"

namespace pamo::lint {
namespace {

// New rules are APPENDED: the id order is the stable report order that
// --list-rules and the tests pin down.
const char* const kRuleIds[] = {
    "determinism-rng",   "time-seeded-rng",      "unordered-iter",
    "throw-discipline",  "catch-all-swallow",    "float-eq",
    "unchecked-front-back", "pragma-once",       "using-namespace-header",
    "raw-thread",        "wall-clock",           "unchecked-file-write",
    "governor-action",
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header_path(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

bool is_src_path(const std::string& path) {
  return path.find("src/") != std::string::npos;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

// Per-line sets of rule ids silenced by `pamo-lint: allow(a, b)` comments.
// Scans the comment channel of the shared stripper, so the directive only
// counts inside a real comment — a string literal that merely mentions the
// allow syntax cannot silence a rule.
std::vector<std::set<std::string>> parse_suppressions(
    const std::vector<std::string>& comment_lines) {
  std::vector<std::set<std::string>> allow(comment_lines.size());
  static const std::regex kAllow(R"(pamo-lint:\s*allow\(([^)]*)\))");
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(comment_lines[i], m, kAllow)) continue;
    std::stringstream list(m[1].str());
    std::string id;
    while (std::getline(list, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               id.end());
      if (!id.empty()) allow[i].insert(id);
    }
  }
  return allow;
}

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct Linter {
  const std::string& path;
  const std::vector<std::string>& code;   // comments/strings blanked
  std::vector<Finding> findings;

  void add(std::size_t line_index, const char* rule, std::string message) {
    findings.push_back(Finding{path, line_index + 1, rule, std::move(message),
                               /*suppressed=*/false});
  }

  // -- determinism-rng ------------------------------------------------------
  void rule_determinism_rng() {
    static const std::regex kBanned(
        R"(std::\s*rand\b|(^|[^\w])s?rand\s*\(|random_device|mt19937|minstd_rand|default_random_engine|ranlux(24|48))");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kBanned)) {
        add(i, "determinism-rng",
            "banned randomness source; derive a seeded pamo::Rng (or "
            "Rng::fork) instead");
      }
    }
  }

  // -- time-seeded-rng ------------------------------------------------------
  void rule_time_seeded_rng() {
    static const std::regex kSeedish(R"((^|[^\w])(seed|Rng\s*\(|srand))");
    static const std::regex kClockish(
        R"(::now\s*\(|(^|[^\w])time\s*\(\s*(nullptr|NULL|0)?\s*\)|(^|[^\w])clock\s*\(\s*\))");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kSeedish) &&
          std::regex_search(code[i], kClockish)) {
        add(i, "time-seeded-rng",
            "RNG seeded from a clock breaks bit-for-bit reproducibility; "
            "thread an explicit seed instead");
      }
    }
  }

  // -- unordered-iter -------------------------------------------------------
  void rule_unordered_iter() {
    if (!is_scheduling_path(path)) return;
    // Pass 1: names declared with an unordered type anywhere in this file
    // (members, locals, parameters — all hazardous to range-iterate).
    std::set<std::string> unordered_names;
    for (const auto& line : code) {
      for (std::size_t pos = line.find("unordered_"); pos != std::string::npos;
           pos = line.find("unordered_", pos + 1)) {
        if (line.compare(pos, 13, "unordered_map") != 0 &&
            line.compare(pos, 13, "unordered_set") != 0) {
          continue;
        }
        std::size_t open = line.find('<', pos);
        if (open == std::string::npos) continue;
        int depth = 0;
        std::size_t close = open;
        for (; close < line.size(); ++close) {
          if (line[close] == '<') ++depth;
          if (line[close] == '>' && --depth == 0) break;
        }
        if (close >= line.size()) continue;  // multi-line decl: not tracked
        std::size_t name_begin = close + 1;
        while (name_begin < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[name_begin])) ||
                line[name_begin] == '&' || line[name_begin] == '*')) {
          ++name_begin;
        }
        std::size_t name_end = name_begin;
        while (name_end < line.size() && is_word(line[name_end])) ++name_end;
        if (name_end > name_begin) {
          unordered_names.insert(line.substr(name_begin, name_end - name_begin));
        }
      }
    }
    if (unordered_names.empty()) return;
    // Pass 2: range-for whose container resolves to one of those names.
    static const std::regex kRangeFor(
        R"(for\s*\([^:;()]*:\s*[&*]?([A-Za-z_][\w.\->]*))");
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(code[i], m, kRangeFor)) continue;
      // Check every dot/arrow component of the container expression.
      std::string expr = m[1].str();
      std::string component;
      bool hit = false;
      for (std::size_t k = 0; k <= expr.size(); ++k) {
        if (k == expr.size() || !is_word(expr[k])) {
          if (unordered_names.count(component) != 0) hit = true;
          component.clear();
        } else {
          component.push_back(expr[k]);
        }
      }
      if (hit) {
        add(i, "unordered-iter",
            "range-iteration over an unordered container in a scheduling "
            "path: iteration order is implementation-defined and feeds "
            "decisions nondeterministically; use an ordered container or "
            "sort the keys first");
      }
    }
  }

  // -- throw-discipline -----------------------------------------------------
  void rule_throw_discipline() {
    if (!is_src_path(path)) return;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      for (std::size_t pos = line.find("throw"); pos != std::string::npos;
           pos = line.find("throw", pos + 5)) {
        if (pos > 0 && is_word(line[pos - 1])) continue;       // rethrow_…
        const std::size_t after = pos + 5;
        if (after < line.size() && is_word(line[after])) continue;  // throw_…
        std::size_t arg = after;
        while (arg < line.size() &&
               std::isspace(static_cast<unsigned char>(line[arg]))) {
          ++arg;
        }
        if (arg >= line.size() || line[arg] == ';') continue;  // bare rethrow
        const std::string rest = line.substr(arg);
        static const std::regex kAllowedType(
            R"(^(::)?(pamo::)?(detail::)?Error[\s({])");
        if (std::regex_search(rest, kAllowedType)) continue;
        add(i, "throw-discipline",
            "module API boundaries throw pamo::Error only; wrap or translate "
            "this exception");
      }
    }
  }

  // -- catch-all-swallow ----------------------------------------------------
  void rule_catch_all_swallow() {
    std::string joined;
    std::vector<std::size_t> line_of_offset;
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (char c : code[i]) {
        joined.push_back(c);
        line_of_offset.push_back(i);
      }
      joined.push_back('\n');
      line_of_offset.push_back(i);
    }
    static const std::regex kCatchAll(R"(catch\s*\(\s*\.\.\.\s*\))");
    for (auto it = std::sregex_iterator(joined.begin(), joined.end(),
                                        kCatchAll);
         it != std::sregex_iterator(); ++it) {
      const std::size_t catch_pos = static_cast<std::size_t>(it->position());
      std::size_t open = joined.find('{', catch_pos + it->length());
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      for (; close < joined.size(); ++close) {
        if (joined[close] == '{') ++depth;
        if (joined[close] == '}' && --depth == 0) break;
      }
      const std::string body = joined.substr(open, close - open);
      if (body.find("throw") != std::string::npos ||
          body.find("rethrow_exception") != std::string::npos ||
          body.find("current_exception") != std::string::npos ||
          body.find("abort") != std::string::npos ||
          body.find("terminate") != std::string::npos) {
        continue;
      }
      add(line_of_offset[catch_pos], "catch-all-swallow",
          "catch (...) that swallows: rethrow, capture "
          "std::current_exception, or catch a concrete type");
    }
  }

  // -- float-eq -------------------------------------------------------------
  void rule_float_eq() {
    if (!is_src_path(path)) return;
    // A floating-point literal: has a dot, an exponent, or an f suffix.
    static const std::string kLit =
        R"((\d+\.\d*([eE][+-]?\d+)?[fFlL]?|\.\d+([eE][+-]?\d+)?[fFlL]?|\d+[eE][+-]?\d+[fFlL]?|\d+[fF]))";
    static const std::regex kLitBeforeOp("(^|[^\\w.])" + kLit +
                                         R"(\s*(==|!=))");
    static const std::regex kOpBeforeLit(R"((==|!=)\s*)" + kLit +
                                         "($|[^\\w.])");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kLitBeforeOp) ||
          std::regex_search(code[i], kOpBeforeLit)) {
        add(i, "float-eq",
            "exact floating-point comparison; use a tolerance, or allowlist "
            "this line if the exact compare is intentional");
      }
    }
  }

  // -- unchecked-front-back -------------------------------------------------
  void rule_unchecked_front_back() {
    if (!is_scheduling_path(path)) return;
    static const std::regex kFrontBack(
        R"(([A-Za-z_][\w]*(?:(?:\.|->)[A-Za-z_][\w]*)*)(?:\.|->)(front|back)\s*\(\s*\))");
    static const char* const kEvidence[] = {
        ".empty", "->empty",        ".size",       "->size",    ".push_back",
        "->push_back", ".emplace_back", "->emplace_back", ".resize",
        ".assign", ".pop_back"};
    constexpr std::size_t kWindow = 8;  // lines of context searched upward
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(),
                                          kFrontBack);
           it != std::sregex_iterator(); ++it) {
        const std::string object = (*it)[1].str();
        bool guarded = false;
        const std::size_t first = i >= kWindow ? i - kWindow : 0;
        for (std::size_t j = first; j <= i && !guarded; ++j) {
          for (const char* ev : kEvidence) {
            if (code[j].find(object + ev) != std::string::npos) {
              guarded = true;
              break;
            }
          }
        }
        if (!guarded) {
          add(i, "unchecked-front-back",
              "." + (*it)[2].str() + "() on '" + object +
                  "' with no nearby emptiness evidence; guard with "
                  ".empty() or allowlist if provably non-empty");
        }
      }
    }
  }

  // -- pragma-once ----------------------------------------------------------
  void rule_pragma_once() {
    if (!is_header_path(path)) return;
    for (const auto& line : code) {
      if (line.find("#pragma once") != std::string::npos) return;
    }
    add(0, "pragma-once", "header is missing #pragma once");
  }

  // -- raw-thread -----------------------------------------------------------
  void rule_raw_thread() {
    if (!is_src_path(path)) return;
    // The pool itself is the one place allowed to own std::thread objects.
    if (path.find("common/thread_pool.") != std::string::npos) return;
    static const std::regex kThread(R"(std::\s*j?thread\b)");
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(),
                                          kThread);
           it != std::sregex_iterator(); ++it) {
        // Static members (std::thread::hardware_concurrency, ::id) read
        // thread facts without spawning; only type uses are flagged.
        std::size_t after =
            static_cast<std::size_t>(it->position()) + it->length();
        while (after < code[i].size() &&
               std::isspace(static_cast<unsigned char>(code[i][after]))) {
          ++after;
        }
        if (after + 1 < code[i].size() && code[i][after] == ':' &&
            code[i][after + 1] == ':') {
          continue;
        }
        add(i, "raw-thread",
            "direct std::thread use outside common/thread_pool: spawn work "
            "through pamo::ThreadPool / parallel_for so worker count, "
            "shutdown, and determinism stay centrally controlled");
      }
    }
  }

  // -- wall-clock -----------------------------------------------------------
  void rule_wall_clock() {
    if (!is_src_path(path)) return;
    // Monotonic clocks (steady_clock, common/ticks) are fine anywhere;
    // *wall-clock* reads make library behaviour depend on the date. Only
    // the observability layer and the tick utilities may touch real time,
    // and then only to label exports — never to steer a decision.
    if (path.find("src/obs") != std::string::npos ||
        path.find("common/ticks") != std::string::npos) {
      return;
    }
    // The bare time() form matches only the argless/null-arg call so
    // names like proc_time(x) or elapsed_time(t) stay quiet.
    static const std::regex kWallClock(
        R"(system_clock|CLOCK_REALTIME|(^|[^\w])(gettimeofday|localtime(_r)?|gmtime(_r)?)\s*\(|(^|[^\w])time\s*\(\s*(nullptr|NULL|0)?\s*\))");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kWallClock)) {
        add(i, "wall-clock",
            "wall-clock read in library code: results must not depend on "
            "the date; use a monotonic clock (common/ticks) or move the "
            "read into the obs layer");
      }
    }
  }

  // -- unchecked-file-write -------------------------------------------------
  void rule_unchecked_file_write() {
    if (!is_src_path(path)) return;
    // The atomic-write protocol is the one sanctioned library writer
    // (POSIX fds + fsync + rename); everything durable routes through it.
    if (path.find("src/ckpt/atomic_io") != std::string::npos) return;
    static const std::regex kWriter(
        R"((^|[^\w])(std::\s*)?(o?fstream)\b|(^|[^\w])fopen\s*\()");
    static const std::regex kPreprocessor(R"(^\s*#)");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kPreprocessor)) continue;  // #include
      if (std::regex_search(code[i], kWriter)) {
        add(i, "unchecked-file-write",
            "direct file write in library code: stream state goes "
            "unchecked and a crash mid-write leaves a torn file; route "
            "durable writes through ckpt::write_file_atomic (temp + fsync "
            "+ rename) or allowlist if this write is genuinely throwaway");
      }
    }
  }

  // -- governor-action ------------------------------------------------------
  void rule_governor_action() {
    if (path.find("src/core") == std::string::npos) return;
    // A mutation of the governor's remembered admitted set: assignment or
    // a mutating member call on the exact identifier `admitted_`. Reads
    // (begin/end/size, binary_search) and lookalike names (admitted_count,
    // admitted_load, next_admitted) do not match.
    static const std::regex kMutate(
        R"((^|[^\w])admitted_\s*(=([^=]|$)|(\.|->)\s*(push_back|emplace_back|erase|clear|insert|assign|resize|pop_back)\b))");
    // Evidence window: the record_action call logging the decision may sit
    // a full admission pass above the final set swap, so the window is
    // wider than unchecked-front-back's.
    constexpr std::size_t kWindow = 30;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!std::regex_search(code[i], kMutate)) continue;
      bool evidenced = false;
      const std::size_t first = i >= kWindow ? i - kWindow : 0;
      for (std::size_t j = first; j <= i && !evidenced; ++j) {
        if (code[j].find("record_action") != std::string::npos) {
          evidenced = true;
        }
      }
      if (!evidenced) {
        add(i, "governor-action",
            "admitted-set mutation with no GovernorAction evidence nearby: "
            "every admit/defer/shed/release decision must be logged through "
            "record_action before it changes who is admitted; allowlist "
            "state-rebuild paths (snapshot restore) explicitly");
      }
    }
  }

  // -- using-namespace-header -----------------------------------------------
  void rule_using_namespace_header() {
    if (!is_header_path(path)) return;
    static const std::regex kUsing(R"((^|[^\w])using\s+namespace\s)");
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (std::regex_search(code[i], kUsing)) {
        add(i, "using-namespace-header",
            "using namespace at header scope leaks into every includer");
      }
    }
  }
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids(std::begin(kRuleIds),
                                            std::end(kRuleIds));
  return ids;
}

bool is_scheduling_path(const std::string& path) {
  for (const char* dir : {"src/sim", "src/sched", "src/bo", "src/core"}) {
    if (path.find(dir) != std::string::npos) return true;
  }
  return false;
}

std::string strip_comments_and_strings(const std::string& content) {
  // The single stripper implementation lives in pamo_analyze; the lint rules
  // consume its code channel (comments and literal bodies blanked, geometry
  // preserved).
  return analyze::strip_source(content).code;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& options) {
  const analyze::StripResult stripped = analyze::strip_source(content);
  const std::vector<std::string> code = split_lines(stripped.code);
  const auto allow = parse_suppressions(split_lines(stripped.comments));

  Linter linter{path, code, {}};
  linter.rule_determinism_rng();
  linter.rule_time_seeded_rng();
  linter.rule_unordered_iter();
  linter.rule_throw_discipline();
  linter.rule_catch_all_swallow();
  linter.rule_float_eq();
  linter.rule_unchecked_front_back();
  linter.rule_pragma_once();
  linter.rule_using_namespace_header();
  linter.rule_raw_thread();
  linter.rule_wall_clock();
  linter.rule_unchecked_file_write();
  linter.rule_governor_action();

  std::vector<Finding> result;
  for (auto& f : linter.findings) {
    const std::size_t idx = f.line - 1;
    const bool suppressed =
        (idx < allow.size() && allow[idx].count(f.rule) != 0) ||
        (idx > 0 && idx - 1 < allow.size() && allow[idx - 1].count(f.rule) != 0);
    if (suppressed && !options.include_suppressed) continue;
    f.suppressed = suppressed;
    result.push_back(std::move(f));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return result;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
    if (f.suppressed) os << " (suppressed)";
    os << '\n';
  }
  return os.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i != 0) os << ',';
    os << "{\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"rule\":\"";
    json_escape(os, f.rule);
    os << "\",\"message\":\"";
    json_escape(os, f.message);
    os << "\",\"suppressed\":" << (f.suppressed ? "true" : "false") << '}';
  }
  os << "],\"count\":" << findings.size() << '}';
  return os.str();
}

}  // namespace pamo::lint
