// obs_smoke — run one small scheduling epoch with observability enabled
// and print the resulting obs::EpochRecord JSON to stdout (or a file).
//
//   obs_smoke [OUT.json]
//
// This is the producer half of the CI observability gate: its output is
// fed to `pamo_trace --check`, which validates the record's internal
// consistency (span algebra, histogram sums, frame conservation).
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "core/obs_export.hpp"
#include "core/service.hpp"
#include "eva/workload.hpp"
#include "obs/epoch_record.hpp"
#include "obs/obs.hpp"
#include "pref/oracle.hpp"

namespace {

// Trimmed budgets so the smoke epoch runs in seconds, mirroring the
// service test fixture: large enough to exercise GP fits, acquisition
// scoring, the scenario sweep, scheduling and simulation.
pamo::core::ServiceOptions smoke_options(std::uint64_t seed) {
  pamo::core::ServiceOptions options;
  options.initial.init_profiles = 32;
  options.initial.init_observations = 3;
  options.initial.mc_samples = 12;
  options.initial.batch_size = 2;
  options.initial.max_iters = 3;
  options.initial.pool.num_quasi_random = 32;
  options.initial.pool.mutations_per_incumbent = 6;
  options.initial.max_pool_feasible = 32;
  options.initial.gp.mle_restarts = 1;
  options.initial.gp.mle_max_evals = 50;
  options.steady = options.initial;
  options.pref_pool_size = 14;
  options.initial_comparisons = 8;
  options.seed = seed;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    pamo::core::SchedulingService service(pamo::eva::make_workload(5, 4, 201),
                                          smoke_options(1));
    pamo::pref::PreferenceOracle oracle(
        pamo::pref::BenefitFunction::uniform());

    pamo::obs::ScopedEnable obs_scope;  // resets metrics/spans on entry
    const auto report = service.run_epoch(oracle);
    const pamo::obs::EpochRecord record =
        pamo::core::export_epoch_record(report);
    const std::string json = pamo::obs::to_json(record);

    if (argc > 1) {
      std::ofstream out(argv[1], std::ios::binary);
      if (!out) throw pamo::Error(std::string("obs_smoke: cannot write ") +
                                  argv[1]);
      out << json << "\n";
      std::cerr << "obs_smoke: wrote " << argv[1] << " ("
                << record.spans.stats.size() << " span paths)\n";
    } else {
      std::cout << json << "\n";
    }
    return 0;
  } catch (const pamo::Error& e) {
    std::cerr << "obs_smoke: " << e.what() << "\n";
    return 1;
  }
}
