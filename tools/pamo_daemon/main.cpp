// pamo_daemon — the restartable serving daemon as a process.
//
//   pamo_daemon --dir DIR [--epochs N] [--resume] [flags]   run the loop
//   pamo_daemon --inspect DIR                               newest snapshot
//   pamo_daemon --verify-ckpt DIR                           decode them all
//
// Run mode drives core::Daemon over a deterministic workload (rebuilt
// from --streams/--servers/--workload-seed on every invocation, so a
// restarted process faces the same environment) and prints one
//   epoch <n> digest <16 hex>
// line per epoch plus the full `trajectory` at exit — the lines the CI
// restart matrix diffs between a killed-and-resumed lineage and an
// uninterrupted run. PAMO_KILL_AT=point[:count][:exit] arms a kill point;
// in throw mode the injected death is converted to the same exit code
// (137) a real SIGKILL would produce, so drivers treat both alike.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ckpt/digest.hpp"
#include "ckpt/killpoint.hpp"
#include "common/error.hpp"
#include "core/daemon.hpp"
#include "eva/churn.hpp"
#include "eva/workload.hpp"
#include "pref/oracle.hpp"

namespace {

struct Args {
  std::string mode = "run";  // run | inspect | verify
  std::string dir;
  std::size_t epochs = 3;
  bool resume = false;
  bool faults = false;
  bool corrupt_telemetry = false;
  bool churn = false;
  std::uint64_t seed = 1;
  std::size_t streams = 5;
  std::size_t servers = 4;
  std::uint64_t workload_seed = 421;
  std::size_t checkpoint_every = 1;
  std::size_t keep = 4;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "pamo_daemon: " << message << "\n"
            << "usage: pamo_daemon --dir DIR [--epochs N] [--resume]\n"
            << "         [--seed S] [--streams M] [--servers N]\n"
            << "         [--workload-seed W] [--checkpoint-every N]\n"
            << "         [--keep N] [--faults] [--corrupt-telemetry]\n"
            << "         [--churn]\n"
            << "       pamo_daemon --inspect DIR\n"
            << "       pamo_daemon --verify-ckpt DIR\n";
  std::exit(2);
}

std::uint64_t parse_uint(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    usage_error("bad value for " + flag + ": '" + text + "'");
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    auto next = [&](const std::string& flag) -> const std::string& {
      if (i + 1 >= tokens.size()) usage_error(flag + " needs a value");
      return tokens[++i];
    };
    if (t == "--dir") {
      args.dir = next(t);
    } else if (t == "--inspect") {
      args.mode = "inspect";
      args.dir = next(t);
    } else if (t == "--verify-ckpt") {
      args.mode = "verify";
      args.dir = next(t);
    } else if (t == "--epochs") {
      args.epochs = parse_uint(t, next(t));
    } else if (t == "--resume") {
      args.resume = true;
    } else if (t == "--faults") {
      args.faults = true;
    } else if (t == "--corrupt-telemetry") {
      args.corrupt_telemetry = true;
    } else if (t == "--churn") {
      args.churn = true;
    } else if (t == "--seed") {
      args.seed = parse_uint(t, next(t));
    } else if (t == "--streams") {
      args.streams = parse_uint(t, next(t));
    } else if (t == "--servers") {
      args.servers = parse_uint(t, next(t));
    } else if (t == "--workload-seed") {
      args.workload_seed = parse_uint(t, next(t));
    } else if (t == "--checkpoint-every") {
      args.checkpoint_every = parse_uint(t, next(t));
    } else if (t == "--keep") {
      args.keep = parse_uint(t, next(t));
    } else {
      usage_error("unknown argument '" + t + "'");
    }
  }
  if (args.dir.empty()) usage_error("--dir (or --inspect/--verify-ckpt) is required");
  return args;
}

// Trimmed budgets so one epoch runs in seconds (the service test
// fixture's preset); the point here is the restart protocol, not BO depth.
pamo::core::ServiceOptions daemon_service_options(const Args& args) {
  pamo::core::ServiceOptions options;
  options.initial.init_profiles = 32;
  options.initial.init_observations = 3;
  options.initial.mc_samples = 12;
  options.initial.batch_size = 2;
  options.initial.max_iters = 3;
  options.initial.pool.num_quasi_random = 32;
  options.initial.pool.mutations_per_incumbent = 6;
  options.initial.max_pool_feasible = 32;
  options.initial.gp.mle_restarts = 1;
  options.initial.gp.mle_max_evals = 50;
  options.steady = options.initial;
  options.steady.init_profiles = 24;
  options.steady.max_iters = 2;
  options.pref_pool_size = 14;
  options.initial_comparisons = 8;
  options.seed = args.seed;
  if (args.churn) {
    // Under churn the daemon runs the full continual-adaptation stack:
    // warm-started BO, a bounded preference pool, and the admission
    // governor. All knobs derive from args, so a restarted process
    // reconstructs the identical configuration.
    options.continual.warm_start = true;
    options.continual.pref_pool_cap = 24;
    options.governor.enabled = true;
    options.governor.max_streams = args.streams + 1;
    options.governor.hysteresis = 0.1;
  }
  return options;
}

// The canonical churn plan of a `--churn` daemon: a pure function of the
// workload seed and epoch budget, so every process in a restart lineage
// builds the same timeline (and a resumed daemon restores the identical
// plan from its checkpoint anyway).
pamo::eva::ChurnPlan daemon_churn_plan(const Args& args) {
  pamo::eva::ChurnOptions churn;
  churn.arrival_rate = 0.6;
  churn.mean_lifetime_epochs = 4.0;
  churn.diurnal_amplitude = 0.3;
  churn.diurnal_period = 6;
  churn.drift_per_epoch = 0.03;
  churn.horizon = args.epochs;
  churn.seed = args.workload_seed ^ 0xC0FFEEull;
  return pamo::eva::ChurnPlan(churn);
}

int run_daemon(const Args& args) {
  pamo::core::DaemonOptions daemon_options;
  daemon_options.checkpoint_dir = args.dir;
  daemon_options.checkpoint_every = args.checkpoint_every;
  daemon_options.keep_checkpoints = args.keep;

  pamo::core::Daemon daemon(
      pamo::eva::make_workload(args.streams, args.servers, args.workload_seed),
      daemon_service_options(args), daemon_options);

  bool resumed = false;
  if (args.resume) {
    if (auto sequence = daemon.resume()) {
      resumed = true;
      std::cerr << "pamo_daemon: resumed from checkpoint " << *sequence
                << " (epoch " << daemon.service().epochs_run() << ", tick "
                << daemon.ticks() << ")\n";
    } else {
      std::cerr << "pamo_daemon: no valid checkpoint, starting fresh\n";
    }
  }
  // Environment knobs are part of the checkpoint; re-installing them on a
  // resumed daemon would reset the telemetry model's stuck-at memory and
  // corruption counters mid-stream.
  if (!resumed) {
    if (args.churn) daemon.service().set_churn_plan(daemon_churn_plan(args));
    if (args.faults) {
      pamo::sim::FaultPlan plan;
      plan.kill_server(1, 1.5, 3.0);
      plan.collapse_uplink(0, 0.5, 0.4);
      plan.slow_server(2, 1.0, 2.5, 3.5);
      plan.drop_frames(0.05, 0xD15EA5E);
      daemon.service().set_fault_plan(plan);
    }
    if (args.corrupt_telemetry) {
      pamo::eva::TelemetryCorruptionOptions corruption;
      corruption.nan_rate = 0.02;
      corruption.inf_rate = 0.01;
      corruption.outlier_rate = 0.05;
      corruption.stuck_rate = 0.03;
      corruption.drop_rate = 0.02;
      corruption.seed = 0xFEED;
      daemon.service().set_telemetry_corruption(corruption);
    }
  }

  pamo::pref::PreferenceOracle oracle(pamo::pref::BenefitFunction::uniform());
  while (daemon.service().epochs_run() < args.epochs) {
    const auto outcome = daemon.step(oracle);
    std::cout << "epoch " << outcome.report.epoch << " digest "
              << pamo::ckpt::to_hex(outcome.digest);
    if (args.churn) {
      const auto& churn = outcome.report.churn;
      std::cout << " offered " << churn.offered << " admitted "
                << churn.admitted << " deferred " << churn.deferred
                << " shed " << churn.shed;
    }
    if (outcome.checkpoint_sequence.has_value()) {
      std::cout << " ckpt " << *outcome.checkpoint_sequence;
    }
    std::cout << "\n";
  }

  std::cout << "trajectory";
  for (std::uint64_t d : daemon.epoch_digests()) {
    std::cout << " " << pamo::ckpt::to_hex(d);
  }
  std::cout << "\n";
  return 0;
}

int inspect(const Args& args) {
  pamo::ckpt::CheckpointStore store(args.dir);
  const auto loaded = store.load_newest_valid();
  if (!loaded.has_value()) {
    std::cout << "no valid checkpoint in " << args.dir << "\n";
    return 1;
  }
  const auto& payload = loaded->payload;
  const auto& service = payload.at("service");
  std::cout << "file " << loaded->file << "\n"
            << "sequence " << loaded->sequence << "\n"
            << "kind " << payload.at("kind").as_string() << "\n"
            << "ticks " << payload.at("ticks").as_uint() << "\n"
            << "epoch " << service.at("epoch").as_uint() << "\n"
            << "epoch_digests " << payload.at("epoch_digests").items().size()
            << "\n"
            << "repair_log " << payload.at("repair_log").items().size() << "\n";
  // Churn/governor state is post-v1: checkpoints written before stream
  // churn existed have none of these keys and must still inspect cleanly.
  if (const auto* churn = service.find("churn")) {
    std::cout << "churn on (arrival_rate "
              << churn->at("arrival_rate").as_double() << ", horizon "
              << churn->at("horizon").as_uint() << ", seed "
              << churn->at("seed").as_uint() << ")\n";
  } else {
    std::cout << "churn off\n";
  }
  if (const auto* governor = service.find("governor")) {
    std::cout << "governor admitted "
              << governor->at("admitted").items().size() << " deferred "
              << governor->at("deferred").items().size() << " shed "
              << governor->at("shed").items().size() << "\n";
  } else {
    std::cout << "governor off\n";
  }
  if (const auto* log = payload.find("governor_log")) {
    std::cout << "governor_log " << log->items().size() << "\n";
  } else {
    std::cout << "governor_log 0\n";
  }
  for (const auto& d : payload.at("epoch_digests").items()) {
    std::cout << "digest " << pamo::ckpt::to_hex(d.as_uint()) << "\n";
  }
  return 0;
}

int verify(const Args& args) {
  pamo::ckpt::CheckpointStore store(args.dir);
  const auto results = store.verify_all();
  std::size_t valid = 0;
  for (const auto& r : results) {
    if (r.valid) {
      ++valid;
      std::cout << "ok " << r.file << " sequence " << r.sequence << "\n";
    } else {
      std::cout << "corrupt " << r.file << " (" << r.error << ")\n";
    }
  }
  std::cout << valid << "/" << results.size() << " valid\n";
  return valid > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  pamo::ckpt::arm_kill_from_env();
  try {
    if (args.mode == "inspect") return inspect(args);
    if (args.mode == "verify") return verify(args);
    return run_daemon(args);
  } catch (const pamo::ckpt::InjectedKill& e) {
    // Throw-mode injection from PAMO_KILL_AT: die with the SIGKILL exit
    // code so restart drivers treat both firing modes identically.
    std::cerr << "pamo_daemon: " << e.what() << "\n";
    std::_Exit(137);
  } catch (const std::exception& e) {
    std::cerr << "pamo_daemon: " << e.what() << "\n";
    return 1;
  }
}
