#include "pamo_analyze/analyze.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace pamo::analyze {
namespace {

// New rules are APPENDED: the id order is the stable report order that
// --list-rules and the tests pin down.
const char* const kRuleIds[] = {
    "snapshot-coverage",
    "layer-dag",
    "contract-coverage",
    "capture-hygiene",
};

// The layer table: includes may only point at the same directory or a
// strictly lower rank. This is the dependency order the tree actually
// builds with (see DESIGN.md "Cross-file semantic analysis" for why the
// serialization layers obs/ckpt sit below the learners that snapshot
// through them).
const std::pair<const char*, int> kLayerRanks[] = {
    {"common", 0}, {"obs", 1},   {"la", 1},        {"opt", 1},
    {"ckpt", 2},   {"gp", 3},    {"eva", 3},       {"pref", 4},
    {"bo", 4},     {"sched", 4}, {"sim", 5},       {"baselines", 5},
    {"core", 6},
};
constexpr int kToolsRank = 7;

constexpr std::size_t kMinBodySpan = 11;  // lines; smaller bodies are trivial

const char* const kContractDirs[] = {"la", "gp", "sched", "bo", "sim", "core"};

const char* const kContractMacros[] = {"PAMO_EXPECTS", "PAMO_ENSURES",
                                       "PAMO_CHECK", "PAMO_ASSERT"};

// Container methods that mutate the object they are called on. A call on a
// shared capture inside a parallel_for lambda through one of these is a
// data race against the determinism digest.
const char* const kMutators[] = {
    "push_back", "emplace_back", "emplace", "insert",  "push",
    "pop_back",  "pop",          "erase",   "clear",   "resize",
    "assign",    "reserve",      "emplace_front", "push_front",
};

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "catch",   "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "new",     "delete",
      "throw",    "static_assert", "const",  "mutable", "volatile",
      "inline",   "constexpr", "consteval", "constinit", "static",
      "unsigned", "signed",   "long",     "short",    "int",     "bool",
      "char",     "double",   "float",    "void",     "auto",    "typename",
      "noexcept", "final",    "override", "explicit", "virtual", "friend",
      "register", "extern",   "thread_local", "operator", "co_return",
      "co_await", "co_yield", "requires", "default",  "delete",  "goto",
      "do",       "else",     "case",     "break",    "continue",
  };
  return kKeywords.count(s) != 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// First path component under `root` ("src/" or "tools/"), where root must
/// sit at the start of the path or right after a '/'. Empty when absent.
std::string dir_under(const std::string& path, const std::string& root) {
  std::size_t pos = 0;
  while ((pos = path.find(root, pos)) != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') {
      const std::size_t b = pos + root.size();
      const std::size_t e = path.find('/', b);
      if (e == std::string::npos) return "";
      return path.substr(b, e - b);
    }
    ++pos;
  }
  return "";
}

bool under_root(const std::string& path, const std::string& root) {
  std::size_t pos = 0;
  while ((pos = path.find(root, pos)) != std::string::npos) {
    if (pos == 0 || path[pos - 1] == '/') return true;
    ++pos;
  }
  return false;
}

int layer_rank(const std::string& dir) {
  for (const auto& [name, rank] : kLayerRanks) {
    if (dir == name) return rank;
  }
  return -1;
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

bool is_ident(const Token& t, const char* s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}

/// Index of the token matching the opener at `open` (same nesting kind), or
/// toks.size() when unbalanced.
std::size_t match_close(const std::vector<Token>& toks, std::size_t open,
                        const char* open_s, const char* close_s) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open_s) {
      ++depth;
    } else if (toks[i].text == close_s && --depth == 0) {
      return i;
    }
  }
  return toks.size();
}

// ---- File indexer ---------------------------------------------------------

struct Indexer {
  FileIndex& out;
  const std::vector<Token>& toks;
  std::size_t pos = 0;
  int anon_depth = 0;

  bool at(std::size_t i) const { return i < toks.size(); }

  /// Skip a balanced <...> template argument list starting at `open`; the
  /// heuristic counts only angle tokens (with >> closing two) which is
  /// enough for declaration contexts.
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "<") ++depth;
      if (t.text == ">" && --depth == 0) return i + 1;
      if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      }
    }
    return toks.size();
  }

  /// Advance to one past the `;` terminating the current statement,
  /// balancing (), [], {} on the way.
  std::size_t skip_to_semi(std::size_t i) const {
    int pd = 0, bd = 0, sd = 0;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(") ++pd;
      if (t.text == ")") --pd;
      if (t.text == "{") ++bd;
      if (t.text == "}") --bd;
      if (t.text == "[") ++sd;
      if (t.text == "]") --sd;
      if (t.text == ";" && pd <= 0 && bd <= 0 && sd <= 0) return i + 1;
      if (t.text == "}" && bd < 0) return i;  // ran out of the scope
    }
    return toks.size();
  }

  void parse_block(std::size_t end, TypeDecl* type, bool* public_access) {
    while (pos < end && pos < toks.size()) {
      const Token& t = toks[pos];
      if (is_punct(t, ";") || is_punct(t, "}")) {
        ++pos;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        const std::string& w = t.text;
        if (w == "namespace" && type == nullptr) {
          parse_namespace(end);
          continue;
        }
        if (w == "inline" && at(pos + 1) && is_ident(toks[pos + 1], "namespace") &&
            type == nullptr) {
          ++pos;
          continue;
        }
        if (w == "template") {
          ++pos;
          if (at(pos) && is_punct(toks[pos], "<")) pos = skip_angles(pos);
          continue;
        }
        if (w == "class" || w == "struct" || w == "union") {
          parse_type(type, public_access);
          continue;
        }
        if (w == "enum") {
          std::size_t i = pos;
          while (i < end && !is_punct(toks[i], "{") && !is_punct(toks[i], ";")) {
            ++i;
          }
          if (i < end && is_punct(toks[i], "{")) {
            i = match_close(toks, i, "{", "}") + 1;
          }
          pos = skip_to_semi(i);
          continue;
        }
        if (w == "using" || w == "typedef" || w == "friend" ||
            w == "static_assert") {
          pos = skip_to_semi(pos);
          continue;
        }
        if (w == "public" || w == "protected" || w == "private") {
          if (type != nullptr && at(pos + 1) && is_punct(toks[pos + 1], ":")) {
            *public_access = (w == "public");
            pos += 2;
            continue;
          }
        }
        if (w == "extern" && at(pos + 1) &&
            toks[pos + 1].kind == TokenKind::kString) {
          if (at(pos + 2) && is_punct(toks[pos + 2], "{")) {
            const std::size_t close = match_close(toks, pos + 2, "{", "}");
            pos += 3;
            parse_block(close, type, public_access);
            pos = close + 1;
            continue;
          }
          pos += 2;
          continue;
        }
      }
      scan_statement(end, type, public_access);
    }
  }

  void parse_namespace(std::size_t end) {
    std::size_t j = pos + 1;
    bool anon = at(j) && is_punct(toks[j], "{");
    while (at(j) && (toks[j].kind == TokenKind::kIdentifier ||
                     is_punct(toks[j], "::"))) {
      ++j;
    }
    if (at(j) && is_punct(toks[j], "=")) {  // namespace alias
      pos = skip_to_semi(j);
      return;
    }
    if (!at(j) || !is_punct(toks[j], "{")) {
      pos = j + 1;
      return;
    }
    const std::size_t close = match_close(toks, j, "{", "}");
    if (anon) ++anon_depth;
    pos = j + 1;
    parse_block(close, nullptr, nullptr);
    if (anon) --anon_depth;
    pos = std::min(close + 1, end);
  }

  void parse_type(TypeDecl* enclosing, bool* enclosing_public) {
    const bool is_class = is_ident(toks[pos], "class");
    std::size_t j = pos + 1;
    if (at(j) && is_ident(toks[j], "alignas") && at(j + 1) &&
        is_punct(toks[j + 1], "(")) {
      j = match_close(toks, j + 1, "(", ")") + 1;
    }
    std::string name;
    std::size_t name_line = toks[pos].line;
    if (at(j) && toks[j].kind == TokenKind::kIdentifier &&
        !is_ident(toks[j], "final")) {
      name = toks[j].text;
      name_line = toks[j].line;
      ++j;
    }
    if (at(j) && is_ident(toks[j], "final")) ++j;
    if (at(j) && is_punct(toks[j], ":")) {  // base list
      int pd = 0;
      while (at(j) && !(pd == 0 && is_punct(toks[j], "{"))) {
        if (is_punct(toks[j], "(")) ++pd;
        if (is_punct(toks[j], ")")) --pd;
        if (is_punct(toks[j], ";")) break;  // malformed / elaborated decl
        ++j;
      }
    }
    if (!at(j) || !is_punct(toks[j], "{")) {
      // Forward declaration (`class X;`) or elaborated use: plain statement.
      pos = skip_to_semi(pos);
      return;
    }
    const std::size_t close = match_close(toks, j, "{", "}");
    TypeDecl td;
    td.name = name;
    td.file = out.path;
    td.line = name_line;
    bool pub = !is_class;
    pos = j + 1;
    parse_block(close, &td, &pub);
    if (!td.name.empty()) out.types.push_back(std::move(td));
    pos = close + 1;
    // Declarators after the closing brace (`} last_good_;`) are members of
    // the enclosing type.
    const std::size_t semi = skip_to_semi(pos) - 1;
    if (enclosing != nullptr && enclosing_public != nullptr) {
      for (std::size_t k = pos; k < semi && k < toks.size(); ++k) {
        if (toks[k].kind == TokenKind::kIdentifier &&
            !is_keyword(toks[k].text)) {
          enclosing->members.push_back(MemberDecl{toks[k].text, toks[k].line});
        }
      }
    }
    pos = semi < toks.size() ? semi + 1 : toks.size();
  }

  /// One declaration/definition at namespace or class scope. Detects
  /// function definitions (records them, skips bodies), function
  /// declarations (public-method bookkeeping at class scope), and data
  /// member declarations.
  void scan_statement(std::size_t end, TypeDecl* type, bool* public_access) {
    const std::size_t start = pos;
    std::size_t i = pos;
    int ad = 0;  // template-angle heuristic depth
    bool saw_static = false;
    std::string name;
    std::string qualifier;
    std::size_t name_line = toks[start].line;
    bool have_cand = false;
    bool after_close = false;

    const auto finish_decl = [&](std::size_t semi_one_past) {
      if (type != nullptr && have_cand && public_access != nullptr &&
          *public_access && !name.empty()) {
        type->public_methods.push_back(name);
      }
      if (type != nullptr && !have_cand) {
        extract_members(start, semi_one_past - 1, type);
      }
      pos = semi_one_past;
    };

    while (i < end && i < toks.size()) {
      const Token& t = toks[i];
      if (!after_close) {
        if (is_punct(t, ";")) {
          finish_decl(i + 1);
          return;
        }
        if (is_punct(t, "=")) {
          const std::size_t after = skip_to_semi(i);
          if (type != nullptr) extract_members(start, after - 1, type);
          pos = after;
          return;
        }
        if (is_punct(t, "{")) {
          const bool fn_like = i > start && is_punct(toks[i - 1], ")");
          const std::size_t close = match_close(toks, i, "{", "}");
          if (fn_like) {
            pos = close + 1;  // unrecognized function-ish body (operators…)
            return;
          }
          i = close + 1;  // brace initializer; statement continues to ';'
          continue;
        }
        if (is_punct(t, "[")) {
          i = match_close(toks, i, "[", "]") + 1;
          continue;
        }
        if (t.kind == TokenKind::kIdentifier && t.text == "operator") {
          std::size_t j = i + 1;
          if (at(j) && is_punct(toks[j], "(") && at(j + 1) &&
              is_punct(toks[j + 1], ")")) {
            j += 2;  // operator()
          } else {
            while (at(j) && !is_punct(toks[j], "(")) ++j;
          }
          if (!at(j)) {
            pos = toks.size();
            return;
          }
          name = "operator";
          name_line = t.line;
          qualifier = qualifier_before(i);
          have_cand = true;
          i = match_close(toks, j, "(", ")") + 1;
          after_close = true;
          continue;
        }
        if (t.kind == TokenKind::kIdentifier && t.text == "static") {
          saw_static = true;
          ++i;
          continue;
        }
        if (is_punct(t, "(")) {
          if (ad == 0 && i > start &&
              toks[i - 1].kind == TokenKind::kIdentifier &&
              !is_keyword(toks[i - 1].text)) {
            name = toks[i - 1].text;
            name_line = toks[i - 1].line;
            qualifier = qualifier_before(i - 1);
            if (i >= start + 2 && is_punct(toks[i - 2], "~")) name = "~" + name;
            have_cand = true;
            i = match_close(toks, i, "(", ")") + 1;
            after_close = true;
            continue;
          }
          i = match_close(toks, i, "(", ")") + 1;
          continue;
        }
        if (is_punct(t, "<") && i > start &&
            toks[i - 1].kind == TokenKind::kIdentifier) {
          ++ad;
          ++i;
          continue;
        }
        if (is_punct(t, ">") && ad > 0) {
          --ad;
          ++i;
          continue;
        }
        if (is_punct(t, ">>") && ad > 0) {
          ad = ad >= 2 ? ad - 2 : 0;
          ++i;
          continue;
        }
        ++i;
        continue;
      }
      // Trailer after the candidate's closing ')'.
      if (is_punct(t, "{")) {
        record_function(name, qualifier, name_line, i, saw_static, type);
        pos = match_close(toks, i, "{", "}") + 1;
        return;
      }
      if (is_punct(t, ";")) {
        finish_decl(i + 1);
        return;
      }
      if (is_punct(t, "=")) {  // = default / = delete / = 0
        finish_decl(skip_to_semi(i));
        return;
      }
      if (is_punct(t, ":")) {  // constructor init list
        std::size_t j = i + 1;
        while (j < toks.size()) {
          const Token& u = toks[j];
          if (is_punct(u, "(")) {
            j = match_close(toks, j, "(", ")") + 1;
            continue;
          }
          if (is_punct(u, "{")) {
            const Token& prev = toks[j - 1];
            const bool initializer = prev.kind == TokenKind::kIdentifier ||
                                     is_punct(prev, ">");
            if (initializer) {
              j = match_close(toks, j, "{", "}") + 1;
              continue;
            }
            record_function(name, qualifier, name_line, j, saw_static, type);
            pos = match_close(toks, j, "{", "}") + 1;
            return;
          }
          if (is_punct(u, ";")) {  // malformed; bail as declaration
            finish_decl(j + 1);
            return;
          }
          ++j;
        }
        pos = toks.size();
        return;
      }
      if (is_punct(t, ",")) {  // multi-declarator: treat as declaration
        finish_decl(skip_to_semi(i));
        return;
      }
      if (is_punct(t, "(") || is_punct(t, "[")) {
        i = match_close(toks, i, t.text == "(" ? "(" : "[",
                        t.text == "(" ? ")" : "]") + 1;
        continue;
      }
      ++i;
    }
    pos = std::max(i, start + 1);
  }

  /// Walk an `A::B::name` chain backwards from the name token at `idx`;
  /// returns the qualifier directly before the name, if any.
  std::string qualifier_before(std::size_t idx) const {
    if (idx < 2) return "";
    if (!is_punct(toks[idx - 1], "::")) return "";
    if (toks[idx - 2].kind != TokenKind::kIdentifier) return "";
    return toks[idx - 2].text;
  }

  void record_function(const std::string& name, const std::string& qualifier,
                       std::size_t name_line, std::size_t body_open,
                       bool saw_static, TypeDecl* type) {
    const std::size_t body_close = match_close(toks, body_open, "{", "}");
    FunctionDef fd;
    fd.name = name;
    fd.qualifier = type != nullptr ? type->name : qualifier;
    fd.file = out.path;
    fd.line = name_line;
    fd.body_begin = body_open;
    fd.body_end = std::min(body_close + 1, toks.size());
    fd.first_body_line = toks[body_open].line;
    fd.last_body_line =
        body_close < toks.size() ? toks[body_close].line : toks.back().line;
    fd.internal = anon_depth > 0 || (saw_static && type == nullptr);
    out.functions.push_back(std::move(fd));
    if (type != nullptr && !name.empty()) {
      type->public_methods.push_back(name);  // defined in-class
    }
  }

  /// Data-member extraction over a declaration statement [begin, semi).
  void extract_members(std::size_t begin, std::size_t semi, TypeDecl* type) {
    if (begin >= semi || begin >= toks.size()) return;
    const Token& first = toks[begin];
    if (first.kind == TokenKind::kIdentifier) {
      static const std::set<std::string> kSkip = {
          "using",  "typedef", "friend",    "static", "constexpr",
          "template", "enum",  "class",     "struct", "union",
          "public", "protected", "private", "static_assert",
      };
      if (kSkip.count(first.text) != 0) return;
    }
    int ad = 0;
    std::size_t i = begin;
    while (i < semi && i < toks.size()) {
      const Token& t = toks[i];
      if (is_punct(t, "<") && i > begin &&
          toks[i - 1].kind == TokenKind::kIdentifier) {
        ++ad;
        ++i;
        continue;
      }
      if (is_punct(t, ">") && ad > 0) {
        --ad;
        ++i;
        continue;
      }
      if (is_punct(t, ">>") && ad > 0) {
        ad = ad >= 2 ? ad - 2 : 0;
        ++i;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && !is_keyword(t.text) && ad == 0 &&
          i + 1 <= semi) {
        const Token* nx = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
        const bool at_end_of_stmt = i + 1 == semi || nx == nullptr;
        const bool separator =
            at_end_of_stmt ||
            (nx->kind == TokenKind::kPunct &&
             (nx->text == ";" || nx->text == "," || nx->text == "=" ||
              nx->text == "[" || nx->text == "{" || nx->text == ":"));
        if (separator) {
          const bool bitfield = !at_end_of_stmt && nx->text == ":";
          if (!bitfield) {
            type->members.push_back(MemberDecl{t.text, t.line});
          }
          // Skip array extents and initializers up to the next ',' or end.
          std::size_t j = i + 1;
          while (j < semi && j < toks.size()) {
            const Token& u = toks[j];
            if (is_punct(u, "[")) {
              j = match_close(toks, j, "[", "]") + 1;
              continue;
            }
            if (is_punct(u, "{")) {
              j = match_close(toks, j, "{", "}") + 1;
              continue;
            }
            if (is_punct(u, "(")) {
              j = match_close(toks, j, "(", ")") + 1;
              continue;
            }
            if (is_punct(u, ",")) {
              ++j;
              break;
            }
            ++j;
          }
          i = j;
          continue;
        }
      }
      ++i;
    }
  }
};

void parse_comment_directives(FileIndex& fi, const std::string& comments) {
  static const std::regex kAllow(R"(pamo-analyze:\s*allow\(([^)]*)\))");
  static const std::regex kSnapshot(R"(pamo-analyze:\s*snapshot\(([^)]*)\))");
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos <= comments.size()) {
    const std::size_t eol = comments.find('\n', pos);
    const std::string text =
        comments.substr(pos, (eol == std::string::npos ? comments.size() : eol) - pos);
    const auto collect = [&](const std::regex& re,
                             std::map<std::size_t, std::vector<std::string>>& dst) {
      for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
           it != std::sregex_iterator(); ++it) {
        std::stringstream list((*it)[1].str());
        std::string id;
        while (std::getline(list, id, ',')) {
          id.erase(std::remove_if(
                       id.begin(), id.end(),
                       [](unsigned char c) { return std::isspace(c) != 0; }),
                   id.end());
          if (!id.empty()) dst[line].push_back(id);
        }
      }
    };
    collect(kAllow, fi.allows);
    collect(kSnapshot, fi.snapshot_annotations);
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
}

// ---- Analyses -------------------------------------------------------------

struct Analyzer {
  const std::vector<FileIndex>& files;
  std::vector<Finding> findings;

  void add(const std::string& file, std::size_t line, const char* rule,
           std::string message) {
    findings.push_back(
        Finding{file, line, rule, std::move(message), /*suppressed=*/false});
  }

  const TypeDecl* find_type(const std::string& name) const {
    for (const auto& fi : files) {
      for (const auto& td : fi.types) {
        if (td.name == name) return &td;
      }
    }
    return nullptr;
  }

  // -- layer-dag ------------------------------------------------------------
  void layer_dag() {
    // Directory-rank edges.
    for (const auto& fi : files) {
      const std::string dir = dir_under(fi.path, "src/");
      int rank = -1;
      if (!dir.empty()) {
        rank = layer_rank(dir);
        if (rank < 0) {
          add(fi.path, 1, "layer-dag",
              "directory src/" + dir +
                  " is not in the layer table; add it to kLayerRanks (and "
                  "DESIGN.md) before introducing a new layer");
          continue;
        }
      } else if (under_root(fi.path, "tools/")) {
        rank = kToolsRank;
      } else {
        continue;
      }
      for (const auto& inc : fi.includes) {
        if (inc.computed || inc.angled) continue;
        const std::size_t slash = inc.target.find('/');
        if (slash == std::string::npos) continue;
        const std::string tdir = inc.target.substr(0, slash);
        const int trank = layer_rank(tdir);
        if (trank < 0) continue;
        if (trank > rank) {
          add(fi.path, inc.line, "layer-dag",
              "upward include: " + (dir.empty() ? std::string("tools") : dir) +
                  " (rank " + std::to_string(rank) + ") must not include " +
                  tdir + "/ (rank " + std::to_string(trank) +
                  "); invert the dependency or move the shared piece down "
                  "the stack");
        } else if (trank == rank && tdir != dir && rank != kToolsRank) {
          add(fi.path, inc.line, "layer-dag",
              "lateral include: " + dir + " and " + tdir +
                  " share layer rank " + std::to_string(rank) +
                  " and must stay independent; move the shared piece to a "
                  "lower layer");
        }
      }
    }
    // File-level include cycles over the indexed tree.
    std::map<std::string, std::size_t> by_path;
    for (std::size_t i = 0; i < files.size(); ++i) by_path[files[i].path] = i;
    const auto resolve = [&](const std::string& target) -> std::size_t {
      for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].path == target ||
            ends_with(files[i].path, "/" + target)) {
          return i;
        }
      }
      return files.size();
    };
    std::vector<std::vector<std::size_t>> adj(files.size());
    struct Edge {
      std::size_t from, to, line;
      std::string target;
    };
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (const auto& inc : files[i].includes) {
        if (inc.computed || inc.angled) continue;
        const std::size_t j = resolve(inc.target);
        if (j >= files.size()) continue;
        adj[i].push_back(j);
        edges.push_back(Edge{i, j, inc.line, inc.target});
      }
    }
    // reach[v] = every node reachable from v (v included).
    std::vector<std::vector<bool>> reach(files.size(),
                                         std::vector<bool>(files.size()));
    for (std::size_t v = 0; v < files.size(); ++v) {
      std::vector<std::size_t> stack{v};
      reach[v][v] = true;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        for (std::size_t w : adj[u]) {
          if (!reach[v][w]) {
            reach[v][w] = true;
            stack.push_back(w);
          }
        }
      }
    }
    for (const auto& e : edges) {
      if (reach[e.to][e.from]) {
        add(files[e.from].path, e.line, "layer-dag",
            "include cycle: " + e.target + " transitively includes " +
                files[e.from].path + " again; break the cycle with a "
                "forward declaration or an interface header");
      }
    }
  }

  // -- snapshot-coverage ----------------------------------------------------
  struct SnapshotReg {
    std::vector<const FunctionDef*> encoders;
    std::vector<const FunctionDef*> decoders;
    std::string first_file;
    std::size_t first_line = 0;
  };

  void snapshot_coverage() {
    std::map<std::string, SnapshotReg> reg;
    for (const auto& fi : files) {
      for (const auto& [line, types] : fi.snapshot_annotations) {
        // Attach to the first function defined at or below the annotation.
        const FunctionDef* best = nullptr;
        for (const auto& fd : fi.functions) {
          if (fd.line >= line && (best == nullptr || fd.line < best->line)) {
            best = &fd;
          }
        }
        if (best == nullptr) {
          add(fi.path, line, "snapshot-coverage",
              "snapshot(...) annotation with no following function "
              "definition in this file");
          continue;
        }
        const bool enc = best->name.find("snapshot") != std::string::npos ||
                         best->name.find("to_json") != std::string::npos;
        const bool dec = best->name.find("restore") != std::string::npos ||
                         best->name.find("from_json") != std::string::npos;
        for (const auto& type : types) {
          auto& r = reg[type];
          if (r.first_line == 0) {
            r.first_file = fi.path;
            r.first_line = line;
          }
          if (enc || !dec) r.encoders.push_back(best);
          if (dec || !enc) r.decoders.push_back(best);
        }
      }
    }
    for (const auto& [type_name, r] : reg) {
      const TypeDecl* td = find_type(type_name);
      if (td == nullptr) {
        add(r.first_file, r.first_line, "snapshot-coverage",
            "snapshot(" + type_name +
                "): no class/struct of that name is declared anywhere in "
                "the analyzed tree");
        continue;
      }
      if (r.encoders.empty() || r.decoders.empty()) {
        add(r.first_file, r.first_line, "snapshot-coverage",
            "snapshot(" + type_name + "): only the " +
                (r.encoders.empty() ? "decode" : "encode") +
                " side is annotated; annotate the matching " +
                (r.encoders.empty() ? "encoder" : "decoder") + " too");
        continue;
      }
      const auto body_names = [&](const std::vector<const FunctionDef*>& fns) {
        std::set<std::string> names;
        for (const FunctionDef* fd : fns) {
          const FileIndex* fi = file_of(fd);
          for (std::size_t i = fd->body_begin; i < fd->body_end; ++i) {
            const Token& t = fi->tokens[i];
            if (t.kind == TokenKind::kIdentifier ||
                t.kind == TokenKind::kString) {
              names.insert(t.text);
            }
          }
        }
        return names;
      };
      const std::set<std::string> enc_names = body_names(r.encoders);
      const std::set<std::string> dec_names = body_names(r.decoders);
      for (const auto& m : td->members) {
        std::string base = m.name;
        while (!base.empty() && base.back() == '_') base.pop_back();
        const auto mentions = [&](const std::set<std::string>& names) {
          return names.count(m.name) != 0 || names.count(base) != 0;
        };
        if (!mentions(enc_names)) {
          add(td->file, m.line, "snapshot-coverage",
              "member '" + m.name + "' of " + type_name +
                  " is never referenced by its snapshot encoder: restored "
                  "instances will silently lose this state (allowlist "
                  "deliberately unserialized members with a justification)");
        } else if (!mentions(dec_names)) {
          add(td->file, m.line, "snapshot-coverage",
              "member '" + m.name + "' of " + type_name +
                  " is written by the encoder but never referenced by its "
                  "decoder: encode/decode asymmetry");
        }
      }
      // Key symmetry between set("k") writes and at("k")/find("k") reads.
      std::map<std::string, std::pair<const FileIndex*, std::size_t>> written;
      std::map<std::string, std::pair<const FileIndex*, std::size_t>> read_req;
      std::set<std::string> read_any;
      const auto scan_keys = [&](const std::vector<const FunctionDef*>& fns,
                                 bool encode_side) {
        for (const FunctionDef* fd : fns) {
          const FileIndex* fi = file_of(fd);
          const auto& tk = fi->tokens;
          for (std::size_t i = fd->body_begin; i + 2 < fd->body_end; ++i) {
            if (tk[i].kind != TokenKind::kIdentifier) continue;
            if (i == 0 || !(is_punct(tk[i - 1], ".") ||
                            is_punct(tk[i - 1], "->"))) {
              continue;
            }
            if (!is_punct(tk[i + 1], "(") ||
                tk[i + 2].kind != TokenKind::kString) {
              continue;
            }
            const std::string& key = tk[i + 2].text;
            if (encode_side && tk[i].text == "set") {
              written.emplace(key, std::make_pair(fi, tk[i + 2].line));
            } else if (!encode_side && tk[i].text == "at") {
              read_req.emplace(key, std::make_pair(fi, tk[i + 2].line));
              read_any.insert(key);
            } else if (!encode_side && tk[i].text == "find") {
              read_any.insert(key);
            }
          }
        }
      };
      scan_keys(r.encoders, /*encode_side=*/true);
      scan_keys(r.decoders, /*encode_side=*/false);
      for (const auto& [key, where] : written) {
        if (read_any.count(key) == 0) {
          add(where.first->path, where.second, "snapshot-coverage",
              "key \"" + key + "\" written by the " + type_name +
                  " encoder is never read back by its decoder: the field "
                  "is dropped on restore");
        }
      }
      for (const auto& [key, where] : read_req) {
        if (written.count(key) == 0) {
          add(where.first->path, where.second, "snapshot-coverage",
              "key \"" + key + "\" read via at() by the " + type_name +
                  " decoder is never written by its encoder: restore will "
                  "throw on every snapshot (use find() for optional "
                  "backward-compatible keys)");
        }
      }
    }
  }

  const FileIndex* file_of(const FunctionDef* fd) const {
    for (const auto& fi : files) {
      if (fi.path == fd->file) return &fi;
    }
    return nullptr;
  }

  // -- contract-coverage ----------------------------------------------------
  void contract_coverage() {
    for (const auto& fi : files) {
      const std::string dir = dir_under(fi.path, "src/");
      bool in_scope = false;
      for (const char* d : kContractDirs) {
        if (dir == d) in_scope = true;
      }
      if (!in_scope) continue;
      for (const auto& fd : fi.functions) {
        if (fd.internal || fd.name.empty() || fd.name == "main" ||
            fd.name == "operator" || fd.name[0] == '~') {
          continue;
        }
        if (fd.last_body_line - fd.first_body_line < kMinBodySpan) continue;
        if (!fd.qualifier.empty()) {
          const TypeDecl* td = find_type(fd.qualifier);
          if (td != nullptr &&
              std::find(td->public_methods.begin(), td->public_methods.end(),
                        fd.name) == td->public_methods.end()) {
            continue;  // private/protected member
          }
        }
        bool evidenced = false;
        for (std::size_t i = fd.body_begin; i < fd.body_end && !evidenced;
             ++i) {
          const Token& t = fi.tokens[i];
          if (t.kind != TokenKind::kIdentifier) continue;
          for (const char* macro : kContractMacros) {
            if (t.text == macro) {
              evidenced = true;
              break;
            }
          }
        }
        if (!evidenced) {
          add(fi.path, fd.line, "contract-coverage",
              "public function " +
                  (fd.qualifier.empty() ? fd.name
                                        : fd.qualifier + "::" + fd.name) +
                  " (" +
                  std::to_string(fd.last_body_line - fd.first_body_line + 1) +
                  " lines) has no PAMO_EXPECTS/PAMO_ENSURES (or "
                  "PAMO_CHECK/PAMO_ASSERT); state its pre/postconditions or "
                  "allowlist it with a justification");
        }
      }
    }
  }

  // -- capture-hygiene ------------------------------------------------------
  void capture_hygiene() {
    for (const auto& fi : files) {
      if (dir_under(fi.path, "src/").empty()) continue;
      const auto& tk = fi.tokens;
      for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
        if (tk[i].kind != TokenKind::kIdentifier) continue;
        if (tk[i].text != "parallel_for" && tk[i].text != "submit") continue;
        if (!is_punct(tk[i + 1], "(")) continue;
        const std::size_t close = match_close(tk, i + 1, "(", ")");
        scan_call_lambdas(fi, i + 2, close);
      }
    }
  }

  struct Lambda {
    bool default_ref = false;
    bool default_val = false;
    bool this_cap = false;
    std::set<std::string> ref_names;
    std::set<std::string> params;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
  };

  void scan_call_lambdas(const FileIndex& fi, std::size_t begin,
                         std::size_t end) {
    const auto& tk = fi.tokens;
    for (std::size_t i = begin; i < end && i < tk.size(); ++i) {
      if (!is_punct(tk[i], "[")) continue;
      if (i == begin || is_punct(tk[i - 1], "(") || is_punct(tk[i - 1], ",")) {
        Lambda lam;
        std::size_t after = parse_lambda(fi, i, &lam);
        if (after == 0) continue;
        check_lambda(fi, lam);
        i = after - 1;
      }
    }
  }

  /// Parse a lambda starting at its '[' token. Returns one past the body's
  /// closing '}' (0 when this is not actually a lambda).
  std::size_t parse_lambda(const FileIndex& fi, std::size_t open,
                           Lambda* lam) {
    const auto& tk = fi.tokens;
    const std::size_t cap_close = match_close(tk, open, "[", "]");
    if (cap_close >= tk.size()) return 0;
    // Capture list entries, split on top-level commas.
    std::vector<std::vector<const Token*>> entries(1);
    int pd = 0;
    for (std::size_t j = open + 1; j < cap_close; ++j) {
      if (is_punct(tk[j], "(") || is_punct(tk[j], "{")) ++pd;
      if (is_punct(tk[j], ")") || is_punct(tk[j], "}")) --pd;
      if (pd == 0 && is_punct(tk[j], ",")) {
        entries.emplace_back();
        continue;
      }
      entries.back().push_back(&tk[j]);
    }
    for (const auto& e : entries) {
      if (e.empty()) continue;
      if (e.size() == 1 && is_punct(*e[0], "&")) {
        lam->default_ref = true;
      } else if (e.size() == 1 && is_punct(*e[0], "=")) {
        lam->default_val = true;
      } else if (is_ident(*e[0], "this") ||
                 (e.size() >= 2 && is_punct(*e[0], "*") &&
                  is_ident(*e[1], "this"))) {
        lam->this_cap = true;
      } else if (is_punct(*e[0], "&") && e.size() >= 2 &&
                 e[1]->kind == TokenKind::kIdentifier) {
        lam->ref_names.insert(e[1]->text);
      }
      // By-value and init captures copy; out of scope for this rule.
    }
    std::size_t j = cap_close + 1;
    if (j < tk.size() && is_punct(tk[j], "<")) {  // template intro
      int ang = 0;
      for (; j < tk.size(); ++j) {
        if (is_punct(tk[j], "<")) ++ang;
        if (is_punct(tk[j], ">") && --ang == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < tk.size() && is_punct(tk[j], "(")) {
      const std::size_t pclose = match_close(tk, j, "(", ")");
      const Token* last_ident = nullptr;
      int depth = 0;
      for (std::size_t k = j + 1; k < pclose; ++k) {
        if (is_punct(tk[k], "(") || is_punct(tk[k], "{") ||
            is_punct(tk[k], "[") || is_punct(tk[k], "<")) {
          ++depth;
        }
        if (is_punct(tk[k], ")") || is_punct(tk[k], "}") ||
            is_punct(tk[k], "]") || is_punct(tk[k], ">")) {
          --depth;
        }
        if (depth > 0) continue;
        if (tk[k].kind == TokenKind::kIdentifier && !is_keyword(tk[k].text)) {
          last_ident = &tk[k];
        }
        if (is_punct(tk[k], ",") || is_punct(tk[k], "=")) {
          if (last_ident != nullptr) lam->params.insert(last_ident->text);
          last_ident = nullptr;
          if (is_punct(tk[k], "=")) {
            while (k < pclose && !is_punct(tk[k], ",")) ++k;
          }
        }
      }
      if (last_ident != nullptr) lam->params.insert(last_ident->text);
      j = pclose + 1;
    }
    while (j < tk.size() && !is_punct(tk[j], "{")) {
      if (is_punct(tk[j], "(")) {  // noexcept(...)
        j = match_close(tk, j, "(", ")") + 1;
        continue;
      }
      if (is_punct(tk[j], ";") || is_punct(tk[j], ")") ||
          is_punct(tk[j], ",")) {
        return 0;  // not a lambda after all (e.g. array subscript)
      }
      ++j;
    }
    if (j >= tk.size()) return 0;
    lam->body_begin = j + 1;
    lam->body_end = match_close(tk, j, "{", "}");
    return std::min(lam->body_end + 1, tk.size());
  }

  void check_lambda(const FileIndex& fi, const Lambda& lam) {
    const auto& tk = fi.tokens;
    // Pass 1: body-local declarations (heuristic: identifier preceded by a
    // type-ish token and not by an access/scope operator).
    std::set<std::string> locals;
    for (std::size_t i = lam.body_begin; i < lam.body_end; ++i) {
      if (tk[i].kind != TokenKind::kIdentifier || is_keyword(tk[i].text)) {
        continue;
      }
      if (i == lam.body_begin) continue;
      const Token& p = tk[i - 1];
      const bool typeish =
          (p.kind == TokenKind::kIdentifier) || is_punct(p, ">") ||
          is_punct(p, "&") || is_punct(p, "*") || is_punct(p, "&&");
      if (!typeish) continue;
      // `a.b c` / `a->b c` is never a declaration, but `ns::type c` is the
      // common qualified-type case (std::size_t s = ...), so `::` stays in.
      if (p.kind == TokenKind::kIdentifier &&
          (i >= 2 && (is_punct(tk[i - 2], ".") || is_punct(tk[i - 2], "->")))) {
        continue;
      }
      locals.insert(tk[i].text);
    }
    const auto is_partition_index = [&](std::size_t open, const char* open_s,
                                        const char* close_s) {
      const std::size_t close = match_close(tk, open, open_s, close_s);
      bool has_ident = false;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (is_punct(tk[k], "[")) return false;  // nested subscript: opaque
        if (tk[k].kind == TokenKind::kIdentifier && !is_keyword(tk[k].text)) {
          has_ident = true;
          if (lam.params.count(tk[k].text) == 0 &&
              locals.count(tk[k].text) == 0) {
            return false;
          }
        }
      }
      return has_ident;
    };
    const auto is_shared = [&](const std::string& root) {
      if (lam.params.count(root) != 0 || locals.count(root) != 0) return false;
      return lam.ref_names.count(root) != 0 || lam.default_ref ||
             lam.this_cap;
    };
    std::set<std::pair<std::size_t, std::string>> reported;
    const auto report = [&](std::size_t line, const std::string& root,
                            const std::string& what) {
      if (!reported.insert({line, root}).second) return;
      add(fi.path, line, "capture-hygiene",
          what + " on '" + root +
              "', a by-reference/this capture in a parallel_for/submit "
              "lambda, without per-index partitioning: concurrent workers "
              "race on it and break the any-worker-count determinism "
              "digest; partition by the loop index or reduce after the "
              "parallel section");
    };
    // Pass 2: writes through chains rooted at a shared capture.
    for (std::size_t i = lam.body_begin; i < lam.body_end; ++i) {
      if (tk[i].kind != TokenKind::kIdentifier || is_keyword(tk[i].text)) {
        continue;
      }
      if (i > 0 && (is_punct(tk[i - 1], ".") || is_punct(tk[i - 1], "->") ||
                    is_punct(tk[i - 1], "::"))) {
        continue;  // not a chain root
      }
      const std::string root = tk[i].text;
      // Walk the access chain: .name / ->name / [..] / (..) steps.
      std::size_t j = i + 1;
      bool partitioned = false;
      std::string pending_method;
      while (j < lam.body_end) {
        if (is_punct(tk[j], "[")) {
          if (is_partition_index(j, "[", "]")) partitioned = true;
          j = match_close(tk, j, "[", "]") + 1;
          pending_method.clear();
          continue;
        }
        if (is_punct(tk[j], "(")) {
          // A call step: either a mutator invocation or an element access
          // à la Matrix::operator() — treat param/local indices as
          // partition evidence.
          if (pending_method.empty() && is_partition_index(j, "(", ")")) {
            partitioned = true;
          }
          if (!pending_method.empty()) {
            bool mutator = false;
            for (const char* m : kMutators) {
              if (pending_method == m) mutator = true;
            }
            if (mutator && !partitioned && is_shared(root)) {
              report(tk[j].line, root, "." + pending_method + "()");
            }
            j = match_close(tk, j, "(", ")") + 1;
            break;  // method call ends the interesting part of the chain
          }
          j = match_close(tk, j, "(", ")") + 1;
          continue;
        }
        if ((is_punct(tk[j], ".") || is_punct(tk[j], "->")) &&
            j + 1 < lam.body_end &&
            tk[j + 1].kind == TokenKind::kIdentifier) {
          pending_method = tk[j + 1].text;
          j += 2;
          continue;
        }
        break;
      }
      if (j < lam.body_end && tk[j].kind == TokenKind::kPunct) {
        static const std::set<std::string> kWriteOps = {
            "=",  "+=", "-=", "*=", "/=", "%=",
            "&=", "|=", "^=", "<<=", ">>=", "++", "--"};
        if (kWriteOps.count(tk[j].text) != 0 && !partitioned &&
            is_shared(root)) {
          report(tk[j].line, root, "write '" + tk[j].text + "'");
        }
      }
      // Prefix increment/decrement.
      if (i > 0 && (is_punct(tk[i - 1], "++") || is_punct(tk[i - 1], "--")) &&
          !is_shared(root)) {
        continue;
      }
      if (i > 0 && (is_punct(tk[i - 1], "++") || is_punct(tk[i - 1], "--")) &&
          is_shared(root)) {
        report(tk[i].line, root, "write '" + tk[i - 1].text + "'");
      }
    }
  }
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids(std::begin(kRuleIds),
                                            std::end(kRuleIds));
  return ids;
}

FileIndex index_file(const std::string& path, const std::string& content) {
  FileIndex fi;
  fi.path = path;
  fi.tokens = tokenize(content);
  fi.includes = parse_includes(content);
  parse_comment_directives(fi, strip_source(content).comments);
  Indexer indexer{fi, fi.tokens};
  indexer.parse_block(fi.tokens.size(), nullptr, nullptr);
  return fi;
}

std::vector<Finding> analyze_tree(const std::vector<SourceFile>& files,
                                  const Options& options) {
  std::vector<FileIndex> idx;
  idx.reserve(files.size());
  for (const auto& f : files) idx.push_back(index_file(f.path, f.content));

  Analyzer analyzer{idx, {}};
  analyzer.snapshot_coverage();
  analyzer.layer_dag();
  analyzer.contract_coverage();
  analyzer.capture_hygiene();

  std::map<std::string, const FileIndex*> by_path;
  for (const auto& fi : idx) by_path[fi.path] = &fi;
  std::vector<Finding> result;
  for (auto& f : analyzer.findings) {
    bool suppressed = false;
    const auto it = by_path.find(f.file);
    if (it != by_path.end()) {
      const auto& allows = it->second->allows;
      for (std::size_t line : {f.line, f.line - 1}) {
        const auto a = allows.find(line);
        if (a != allows.end() &&
            std::find(a->second.begin(), a->second.end(), f.rule) !=
                a->second.end()) {
          suppressed = true;
        }
      }
    }
    if (suppressed && !options.include_suppressed) continue;
    f.suppressed = suppressed;
    result.push_back(std::move(f));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return result;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
    if (f.suppressed) os << " (suppressed)";
    os << '\n';
  }
  return os.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i != 0) os << ',';
    os << "{\"file\":\"";
    json_escape(os, f.file);
    os << "\",\"line\":" << f.line << ",\"rule\":\"";
    json_escape(os, f.rule);
    os << "\",\"message\":\"";
    json_escape(os, f.message);
    os << "\",\"suppressed\":" << (f.suppressed ? "true" : "false") << '}';
  }
  os << "],\"count\":" << findings.size() << '}';
  return os.str();
}

}  // namespace pamo::analyze
