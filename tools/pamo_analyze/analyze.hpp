// pamo_analyze — whole-tree semantic analysis for PaMO's cross-file
// invariants.
//
// pamo_lint is a per-file pass and cannot see the bug classes that actually
// threaten the repo's headline guarantees: a member added to a checkpointed
// type but forgotten in its codec silently loses learned state on restore,
// an #include that points the wrong way up the layer stack couples modules
// that must stay independent, and a by-reference capture written inside a
// parallel_for body silently breaks the 1-vs-8-worker digest. pamo_analyze
// builds a tree-wide index (files, includes, class/struct members, function
// definitions) on the shared tokenizer and runs four analyses over it:
//
//   snapshot-coverage   Types participating in checkpointing register their
//                       encode/decode pair with a `snapshot(TypeName)`
//                       annotation comment (prefixed with the analyzer tag).
//                       The analysis diffs the type's declared data members
//                       against the identifiers its encoders write and its
//                       decoders read, and checks that every key written via
//                       set("k") is read back via at("k")/find("k") and vice
//                       versa. Deliberately unserialized members (caches,
//                       construction-time options) carry a per-member allow.
//   layer-dag           The #include graph over src/ must respect the layer
//                       order (see kLayerRanks in analyze.cpp and DESIGN.md):
//                       common < {obs, la, opt} < ckpt < {gp, eva} <
//                       {pref, bo, sched} < {sim, baselines} < core < tools.
//                       Upward edges, same-rank lateral edges, and file-level
//                       include cycles are findings.
//   contract-coverage   Every public non-trivial function defined in
//                       src/{la,gp,sched,bo,sim,core} must contain a
//                       PAMO_EXPECTS/PAMO_ENSURES (or an always-on
//                       PAMO_CHECK/PAMO_ASSERT, which is stricter) or carry a
//                       per-function allow.
//   capture-hygiene     Inside lambdas passed to parallel_for/submit, a
//                       by-reference or this capture that is written without
//                       per-index partitioning evidence is a finding: indexed
//                       writes like out[i] / results(s, c) whose every index
//                       identifier is a lambda parameter or body-local are
//                       fine; push_back/insert on a shared container, `+=` on
//                       a shared local, and writes through non-local indices
//                       are races against the determinism digest.
//
// Suppression mirrors pamo_lint: an `allow(rule-a, rule-b)` comment tagged
// `pamo-analyze:` on the finding line or the line directly above silences it
// (only in real comments — literals are inert, courtesy of the tokenizer).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "pamo_analyze/tokenizer.hpp"

namespace pamo::analyze {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
};

struct Options {
  /// Keep findings silenced by allow() comments, marked suppressed=true.
  bool include_suppressed = false;
};

/// One translation unit handed to the tree analysis.
struct SourceFile {
  std::string path;
  std::string content;
};

/// All rule ids, in report order (stable; used by --list-rules and tests).
const std::vector<std::string>& rule_ids();

/// Run all four analyses over the tree. Findings come back sorted by file
/// then line.
std::vector<Finding> analyze_tree(const std::vector<SourceFile>& files,
                                  const Options& options = {});

// ---- Index types, exposed for tests --------------------------------------

struct MemberDecl {
  std::string name;
  std::size_t line = 0;
};

struct TypeDecl {
  std::string name;  // unqualified
  std::string file;
  std::size_t line = 0;
  std::vector<MemberDecl> members;
  /// Method names declared public (used to decide publicness of out-of-class
  /// definitions).
  std::vector<std::string> public_methods;
};

struct FunctionDef {
  std::string name;        // unqualified
  std::string qualifier;   // "Type" for Type::name / in-class defs, else ""
  std::string file;
  std::size_t line = 0;       // line of the name token
  std::size_t body_begin = 0; // token index of '{' in the file token stream
  std::size_t body_end = 0;   // token index one past the matching '}'
  std::size_t first_body_line = 0;
  std::size_t last_body_line = 0;
  bool internal = false;  // anonymous namespace or static linkage
};

struct FileIndex {
  std::string path;
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<TypeDecl> types;
  std::vector<FunctionDef> functions;
  /// line (1-based) -> rule ids allowed on that line.
  std::map<std::size_t, std::vector<std::string>> allows;
  /// line (1-based) -> type names named by snapshot(...) annotations.
  std::map<std::size_t, std::vector<std::string>> snapshot_annotations;
};

/// Parse one file into its index (exposed for tests).
FileIndex index_file(const std::string& path, const std::string& content);

/// `file:line: [rule] message` lines, one per finding.
std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable report: {"findings":[...],"count":N}.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace pamo::analyze
