// pamo_analyze CLI — index every C++ source under the given paths as one
// tree, run the cross-file analyses (snapshot-coverage, layer-dag,
// contract-coverage, capture-hygiene), print findings, exit non-zero when
// any unsuppressed finding remains.
//
// Usage: pamo_analyze [--format=text|json] [--include-suppressed]
//                     [--list-rules] <path>...
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pamo_analyze/analyze.hpp"

namespace {

namespace fs = std::filesystem;

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::vector<std::string> collect(const std::vector<std::string>& inputs) {
  std::vector<std::string> files;
  for (const auto& input : inputs) {
    const fs::path p(input);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && analyzable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      std::cerr << "pamo_analyze: no such file or directory: " << input
                << '\n';
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  pamo::analyze::Options options;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "pamo_analyze: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--include-suppressed") {
      options.include_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const auto& id : pamo::analyze::rule_ids()) std::cout << id << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pamo_analyze [--format=text|json] "
                   "[--include-suppressed] [--list-rules] <path>...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "pamo_analyze: unknown option '" << arg << "'\n";
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "pamo_analyze: no inputs (try --help)\n";
    return 2;
  }

  std::vector<pamo::analyze::SourceFile> sources;
  for (const auto& file : collect(inputs)) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "pamo_analyze: cannot read " << file << '\n';
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    sources.push_back(pamo::analyze::SourceFile{file, content.str()});
  }

  const auto all = pamo::analyze::analyze_tree(sources, options);
  if (format == "json") {
    std::cout << pamo::analyze::to_json(all) << '\n';
  } else {
    std::cout << pamo::analyze::to_text(all);
  }
  const auto unsuppressed = std::count_if(
      all.begin(), all.end(),
      [](const pamo::analyze::Finding& f) { return !f.suppressed; });
  if (format == "text") {
    std::cout << unsuppressed << " finding(s)\n";
  }
  return unsuppressed == 0 ? 0 : 1;
}
