// Shared lossless C++ tokenizer for PaMO's repo-native static analyses.
//
// One comment/string stripping implementation serves both pamo_lint (per-file
// regex rules) and pamo_analyze (whole-tree semantic passes). The contract is
// geometric: every transformation preserves line and column positions exactly,
// so a finding computed on the stripped text maps 1:1 onto the raw source.
//
// Three views of a translation unit:
//   strip_source    two parallel strings the same shape as the input — `code`
//                   with comments and literal bodies blanked (quote characters
//                   kept as anchors), and `comments` with everything *except*
//                   comment text blanked. Suppression and annotation comments
//                   are parsed from the `comments` channel only, which is what
//                   makes directives inside string literals inert.
//   tokenize        a flat token stream (identifiers, numbers, punctuators,
//                   string/char literals with their raw bodies), each tagged
//                   with its 1-based source line. Comments are skipped;
//                   preprocessor directives are consumed as opaque logical
//                   lines so unbalanced braces in macro bodies cannot corrupt
//                   scope tracking downstream.
//   parse_includes  every #include directive with its target, quoting form
//                   (<...> vs "..."), and computed-macro includes flagged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pamo::analyze {

struct StripResult {
  /// Comments and literal bodies blanked to spaces; newlines, quote anchors,
  /// and all code characters kept, so line/column geometry survives.
  std::string code;
  /// The complement: only comment text (including the // and /* markers)
  /// survives; code, strings, and chars are blanked. Same geometry.
  std::string comments;
};

StripResult strip_source(const std::string& content);

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // text = raw literal body, without quotes or raw-string delims
  kCharLit,  // text = raw literal body, without quotes
  kPunct,    // text = the punctuator, multi-character operators combined
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based
};

/// Tokenize raw source. Comments vanish; preprocessor directives (including
/// their backslash-continuation lines) are consumed without emitting tokens.
std::vector<Token> tokenize(const std::string& content);

struct IncludeDirective {
  std::string target;    // path without delimiters; empty when computed
  bool angled = false;   // #include <...>
  bool computed = false; // #include MACRO — target is the macro spelling
  std::size_t line = 0;  // 1-based
};

/// Every #include in the file, in source order. Directives inside comments
/// or string literals are not includes and are not reported.
std::vector<IncludeDirective> parse_includes(const std::string& content);

/// True for identifier characters ([A-Za-z0-9_]).
bool is_word_char(char c);

}  // namespace pamo::analyze
