#include "pamo_analyze/tokenizer.hpp"

#include <cctype>

namespace pamo::analyze {

namespace {

// Multi-character punctuators, longest first so maximal munch is a simple
// prefix scan. Distinguishing `=` from `==` (and the compound assignments)
// is what the capture-hygiene write detection depends on.
const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*",
};

}  // namespace

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

StripResult strip_source(const std::string& content) {
  StripResult r;
  r.code.reserve(content.size());
  r.comments.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" closer of a raw string
  const auto emit = [&r](char code_c, char comment_c) {
    r.code += code_c;
    r.comments += comment_c;
  };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          emit(' ', '/');
          emit(' ', '/');
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          emit(' ', '/');
          emit(' ', '*');
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word_char(content[i - 1]))) {
          const std::size_t open = content.find('(', i + 2);
          if (open == std::string::npos) {
            emit(c, ' ');
            break;
          }
          raw_delim = ")" + content.substr(i + 2, open - (i + 2)) + "\"";
          state = State::kRawString;
          emit('R', ' ');
          emit('"', ' ');
          for (std::size_t k = i + 2; k <= open; ++k) emit(' ', ' ');
          i = open;
        } else if (c == '"') {
          state = State::kString;
          emit(c, ' ');
        } else if (c == '\'' && (i == 0 || !is_word_char(content[i - 1]))) {
          // The word-char guard keeps digit separators (1'000'000) from
          // opening a phantom character literal.
          state = State::kChar;
          emit(c, ' ');
        } else {
          emit(c, c == '\n' ? '\n' : ' ');
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Backslash-newline splices the next physical line into this
          // comment; the newline itself must survive for line geometry.
          emit(' ', c);
          emit('\n', '\n');
          ++i;
        } else if (c == '\n') {
          state = State::kCode;
          emit('\n', '\n');
        } else {
          emit(' ', c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          emit(' ', '*');
          emit(' ', '/');
          ++i;
        } else if (c == '\n') {
          emit('\n', '\n');
        } else {
          emit(' ', c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          emit(' ', ' ');
          emit(next == '\n' ? '\n' : ' ', next == '\n' ? '\n' : ' ');
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          emit(c, ' ');
        } else {
          emit(c == '\n' ? '\n' : ' ', c == '\n' ? '\n' : ' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          emit(' ', ' ');
          emit(' ', ' ');
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          emit(c, ' ');
        } else {
          emit(' ', ' ');
        }
        break;
      case State::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) emit(' ', ' ');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          emit(c == '\n' ? '\n' : ' ', c == '\n' ? '\n' : ' ');
        }
        break;
    }
  }
  return r;
}

namespace {

/// Consume a preprocessor directive starting at `p` (the '#') in the stripped
/// code view: to end-of-line, following backslash continuations. Returns the
/// offset one past the directive (the '\n' is not consumed).
std::size_t skip_directive(const std::string& code, std::size_t p) {
  while (p < code.size()) {
    if (code[p] == '\n') {
      // A continuation iff the last non-blank character before the newline
      // is a backslash (comments are already blanked in this view).
      std::size_t q = p;
      while (q > 0 && (code[q - 1] == ' ' || code[q - 1] == '\t')) --q;
      if (q > 0 && code[q - 1] == '\\') {
        ++p;
        continue;
      }
      return p;
    }
    ++p;
  }
  return p;
}

}  // namespace

std::vector<Token> tokenize(const std::string& content) {
  const StripResult sr = strip_source(content);
  const std::string& code = sr.code;
  std::vector<Token> tokens;
  std::size_t line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  std::size_t i = 0;
  const auto bump_lines = [&line](const std::string& text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consume the logical line without emitting
      // tokens, so macro bodies cannot unbalance downstream scope tracking.
      const std::size_t end = skip_directive(code, i);
      bump_lines(code.substr(i, end - i));
      i = end;
      continue;
    }
    at_line_start = false;
    // Raw string: `R"` anchor in the code view, body recovered from content.
    if (c == 'R' && i + 1 < code.size() && code[i + 1] == '"' &&
        i + 1 < content.size() && content[i + 1] == '"') {
      const std::size_t open = content.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string closer =
            ")" + content.substr(i + 2, open - (i + 2)) + "\"";
        const std::size_t close = content.find(closer, open + 1);
        const std::size_t body_end =
            close == std::string::npos ? content.size() : close;
        const std::string body =
            content.substr(open + 1, body_end - (open + 1));
        tokens.push_back(Token{TokenKind::kString, body, line});
        bump_lines(body);
        i = close == std::string::npos ? content.size()
                                       : close + closer.size();
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      // The stripped view blanks literal bodies (escaped quotes included),
      // so the next matching quote character in `code` is the closer; the
      // body text comes from the raw content at the same offsets.
      const std::size_t close = code.find(c, i + 1);
      const std::size_t end = close == std::string::npos ? code.size() : close;
      const std::string body = content.substr(i + 1, end - (i + 1));
      tokens.push_back(Token{
          c == '"' ? TokenKind::kString : TokenKind::kCharLit, body, line});
      bump_lines(body);
      i = close == std::string::npos ? code.size() : close + 1;
      continue;
    }
    if (is_word_char(c)) {
      const bool number = std::isdigit(static_cast<unsigned char>(c)) != 0;
      std::size_t j = i;
      while (j < code.size() &&
             (is_word_char(code[j]) ||
              (number && (code[j] == '.' || code[j] == '\'')) ||
              (number && (code[j] == '+' || code[j] == '-') && j > i &&
               (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                code[j - 1] == 'p' || code[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back(Token{number ? TokenKind::kNumber : TokenKind::kIdentifier,
                             code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '.' && i + 1 < code.size() &&
        std::isdigit(static_cast<unsigned char>(code[i + 1])) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (is_word_char(code[j]) || code[j] == '.' ||
              ((code[j] == '+' || code[j] == '-') &&
               (code[j - 1] == 'e' || code[j - 1] == 'E')))) {
        ++j;
      }
      tokens.push_back(Token{TokenKind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (code.compare(i, len, op) == 0) {
        tokens.push_back(Token{TokenKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

std::vector<IncludeDirective> parse_includes(const std::string& content) {
  const StripResult sr = strip_source(content);
  const std::string& code = sr.code;
  std::vector<IncludeDirective> out;
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < code.size()) {
    const std::size_t eol = code.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? code.size() : eol;
    std::size_t p = pos;
    while (p < end && (code[p] == ' ' || code[p] == '\t')) ++p;
    if (p < end && code[p] == '#') {
      ++p;
      while (p < end && (code[p] == ' ' || code[p] == '\t')) ++p;
      if (code.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < end && (code[p] == ' ' || code[p] == '\t')) ++p;
        IncludeDirective inc;
        inc.line = line;
        if (p < end && code[p] == '<') {
          const std::size_t close = code.find('>', p + 1);
          if (close != std::string::npos && close < end) {
            inc.angled = true;
            // Angled targets are plain code characters, preserved as-is.
            inc.target = code.substr(p + 1, close - (p + 1));
            out.push_back(inc);
          }
        } else if (p < end && code[p] == '"') {
          const std::size_t close = code.find('"', p + 1);
          if (close != std::string::npos && close < end) {
            // The body is blanked in the code view; same offsets in the raw
            // content hold the real path.
            inc.target = content.substr(p + 1, close - (p + 1));
            out.push_back(inc);
          }
        } else if (p < end && is_word_char(code[p])) {
          std::size_t q = p;
          while (q < end && is_word_char(code[q])) ++q;
          inc.computed = true;
          inc.target = code.substr(p, q - p);
          out.push_back(inc);
        }
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
  return out;
}

}  // namespace pamo::analyze
