#!/usr/bin/env bash
# One-stop local static analysis: the same three passes CI's analyze.yml
# runs, in the same scopes, against an existing build tree.
#
#   1. pamo_lint     per-file rules over src tests bench examples tools
#   2. pamo_analyze  cross-file semantics (snapshot coverage, layer DAG,
#                    contract coverage, capture hygiene) over src tools
#   3. clang-tidy    curated .clang-tidy profile over the compile database
#                    (skipped with a note when run-clang-tidy is absent)
#
# usage: scripts/run_static_analysis.sh [build-dir]   (default: build)
set -eu

BUILD=${1:-build}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

[ -d "$BUILD" ] || { echo "error: build dir '$BUILD' not found (configure with cmake first)" >&2; exit 2; }

cmake --build "$BUILD" -j "$(nproc)" --target pamo_lint pamo_analyze

status=0

echo "== pamo_lint =="
"$BUILD"/tools/pamo_lint src tests bench examples tools || status=1

echo "== pamo_analyze =="
"$BUILD"/tools/pamo_analyze src tools || status=1

echo "== clang-tidy =="
if command -v run-clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD"/compile_commands.json ]; then
    run-clang-tidy -quiet -p "$BUILD" "$ROOT/(src|tools)/.*\.cpp$" || status=1
  else
    echo "skipped: $BUILD/compile_commands.json missing (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  echo "skipped: run-clang-tidy not installed"
fi

if [ "$status" -ne 0 ]; then
  echo "static analysis FAILED" >&2
else
  echo "static analysis clean"
fi
exit "$status"
