#!/usr/bin/env bash
# Kill-point restart matrix, real-process edition.
#
# The in-process matrix (tests/integration/test_daemon_restart.cpp) proves
# recovery under *throw-mode* kills; this driver repeats it with actual
# process death: PAMO_KILL_AT=<point>:<count>:exit makes pamo_daemon call
# std::_Exit(137) mid-protocol — no destructors, no stream flushes, the
# closest a test gets to a power cut. For every kill point the script
# kills a run, resumes it from disk, and requires the completed digest
# trajectory to be byte-identical to an uninterrupted baseline. A final
# scenario truncates the newest snapshot on disk and requires resume to
# fall back to the previous one and still converge.
#
# usage: scripts/ckpt_restart_matrix.sh path/to/pamo_daemon
set -eu

DAEMON=${1:?usage: ckpt_restart_matrix.sh path/to/pamo_daemon}
EPOCHS=4
FLAGS=(--epochs "$EPOCHS" --faults --corrupt-telemetry)

WORK=$(mktemp -d /tmp/pamo_restart_matrix_XXXXXX)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

trajectory_of() {
  # Last line of a completed run: "trajectory <hex> <hex> ..."
  grep '^trajectory ' "$1" | tail -n 1
}

echo "== baseline (uninterrupted, $EPOCHS epochs) =="
"$DAEMON" --dir "$WORK/baseline" "${FLAGS[@]}" > "$WORK/baseline.out"
BASELINE=$(trajectory_of "$WORK/baseline.out")
[ -n "$BASELINE" ] || fail "baseline produced no trajectory"
echo "$BASELINE"

# point:count — daemon-loop points die on the second epoch, write-path
# points during the second checkpoint, so a durable snapshot already
# exists and the recovery window is non-trivial. daemon.epoch.begin:1
# additionally covers the nothing-on-disk cold restart.
MATRIX=(
  daemon.epoch.begin:1
  daemon.epoch.begin:2
  daemon.epoch.pre_commit:2
  daemon.epoch.committed:2
  ckpt.write.begin:2
  ckpt.write.partial:2
  ckpt.write.before_fsync:2
  ckpt.write.before_rename:2
  ckpt.write.after_rename:2
)

for entry in "${MATRIX[@]}"; do
  point=${entry%:*}
  count=${entry#*:}
  dir="$WORK/kill_${entry//[.:]/_}"
  echo "== kill at $point (traversal $count) =="

  status=0
  PAMO_KILL_AT="$entry:exit" "$DAEMON" --dir "$dir" "${FLAGS[@]}" \
    > "$dir.killed.out" 2> "$dir.killed.err" || status=$?
  [ "$status" -eq 137 ] || fail "$entry: expected exit 137, got $status"

  "$DAEMON" --dir "$dir" --resume "${FLAGS[@]}" > "$dir.resumed.out"
  got=$(trajectory_of "$dir.resumed.out")
  [ "$got" = "$BASELINE" ] || fail "$entry: trajectory diverged
  expected: $BASELINE
  got:      $got"
  echo "recovered bit-identically"
done

# Churn lane: same kill discipline with stream churn, the admission
# governor, and warm-started learning active — the checkpoint now also
# carries the churn plan, the governor's defer/shed queues, and the
# cumulative governor log, and resume must still be bit-identical. A
# subset of kill points keeps the matrix quick; the write path is already
# covered payload-agnostically above.
CHURN_FLAGS=(--epochs "$EPOCHS" --faults --churn)
echo "== churn baseline (uninterrupted, $EPOCHS epochs) =="
"$DAEMON" --dir "$WORK/churn_baseline" "${CHURN_FLAGS[@]}" \
  > "$WORK/churn_baseline.out"
CHURN_BASELINE=$(trajectory_of "$WORK/churn_baseline.out")
[ -n "$CHURN_BASELINE" ] || fail "churn baseline produced no trajectory"
[ "$CHURN_BASELINE" != "$BASELINE" ] \
  || fail "churn baseline identical to churn-free baseline (churn inert?)"
echo "$CHURN_BASELINE"

CHURN_MATRIX=(
  daemon.epoch.begin:2
  daemon.epoch.pre_commit:2
  daemon.epoch.committed:2
)

for entry in "${CHURN_MATRIX[@]}"; do
  point=${entry%:*}
  count=${entry#*:}
  dir="$WORK/churn_kill_${entry//[.:]/_}"
  echo "== churn: kill at $point (traversal $count) =="

  status=0
  PAMO_KILL_AT="$entry:exit" "$DAEMON" --dir "$dir" "${CHURN_FLAGS[@]}" \
    > "$dir.killed.out" 2> "$dir.killed.err" || status=$?
  [ "$status" -eq 137 ] || fail "churn $entry: expected exit 137, got $status"

  "$DAEMON" --dir "$dir" --resume "${CHURN_FLAGS[@]}" > "$dir.resumed.out"
  got=$(trajectory_of "$dir.resumed.out")
  [ "$got" = "$CHURN_BASELINE" ] || fail "churn $entry: trajectory diverged
  expected: $CHURN_BASELINE
  got:      $got"
  echo "recovered bit-identically"
done

echo "== corrupt newest snapshot, resume falls back =="
dir="$WORK/corrupt"
"$DAEMON" --dir "$dir" "${FLAGS[@]}" > "$dir.first.out"
newest=$(ls "$dir"/ckpt-*.json | sort | tail -n 1)
size=$(wc -c < "$newest")
truncate -s "$((size / 2))" "$newest"
"$DAEMON" --verify-ckpt "$dir" | grep -q "^corrupt $(basename "$newest")" \
  || fail "verify-ckpt did not flag the truncated snapshot"
"$DAEMON" --dir "$dir" --resume "${FLAGS[@]}" > "$dir.resumed.out"
got=$(trajectory_of "$dir.resumed.out")
[ "$got" = "$BASELINE" ] || fail "corrupt-newest: trajectory diverged
  expected: $BASELINE
  got:      $got"
echo "fell back and recovered bit-identically"

echo "ckpt_restart_matrix: all scenarios recovered bit-identically"
