#!/usr/bin/env bash
# Tier-1 verification, split by ctest label lane:
#
#   unit + integration   always run (the default lane, `-LE slow`)
#   slow                 the randomized fleet sweep + anything else marked
#                        slow; included with --with-slow (CI runs it on
#                        the dedicated fleet-smoke job instead)
#
# usage: scripts/run_tier1.sh [--with-slow] [build-dir]   (default: build)
set -eu

WITH_SLOW=0
BUILD=build
for arg in "$@"; do
  case "$arg" in
    --with-slow) WITH_SLOW=1 ;;
    *) BUILD=$arg ;;
  esac
done

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"

echo "== ctest (unit + integration) =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -LE slow

if [ "$WITH_SLOW" -eq 1 ]; then
  echo "== ctest (slow) =="
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" -L slow
fi
